"""Circuit 2 of the paper: the circular queue.

"Circuit 2 is a circular queue controlled by a read pointer, a write pointer
and a wrap bit that toggles whenever either pointer wraps around the queue.
It also has stall, clear and reset signals as inputs. Properties were
written to verify the correct operation of the wrap bit, the full and empty
signals. ... The coverage for the full and empty signals was 100%. But
coverage for the wrap bit was 60%. Inspecting the uncovered states, three
additional properties were written which still did not achieve 100%
coverage. We traced the input/state sequences leading to these uncovered
states and found that the value of wrap bit was not checked if the stall
signal was asserted ... A property was added to specify that the wrap bit
remains unchanged for this case and 100% coverage was achieved."

Queue semantics:

* ``reset``/``clear`` zero both pointers and the wrap bit;
* ``stall`` freezes the queue;
* otherwise a push (when not full) advances the write pointer and a pop
  (when not empty) advances the read pointer, each modulo the depth;
* the wrap bit toggles whenever a pointer steps from ``depth-1`` to 0
  (simultaneous wraparounds cancel);
* ``full``/``empty`` are the classic comparator outputs
  (``rd == wr`` with / without the wrap bit).

The property suites reproduce the paper's three stages for observed signal
``wrap``: :func:`circular_queue_wrap_properties` with ``stage="initial"``
(the wraparound-event checks, far from full coverage), ``stage="extended"``
(three more properties — still short), and the stall property
(:func:`circular_queue_wrap_stall_property`) that finally closes the hole,
plus the complete ``full``/``empty`` suites (100% each).
"""

from __future__ import annotations

import math
from typing import List, Optional

from ..bdd import ResourcePolicy
from ..ctl.ast import CtlAnd, CtlFormula
from ..ctl.parser import parse_ctl
from ..engine import EngineConfig, _coalesce_trans
from ..expr.arith import increment_mod_bits, mux
from ..expr.ast import FALSE_EXPR, And, Not, Or, Var, Xor
from ..expr.parser import parse_expr
from ..fsm.builder import CircuitBuilder
from ..fsm.fsm import FSM

__all__ = [
    "build_circular_queue",
    "circular_queue_wrap_properties",
    "circular_queue_wrap_stall_property",
    "circular_queue_full_properties",
    "circular_queue_empty_properties",
    "DEFAULT_DEPTH",
]

DEFAULT_DEPTH = 4


def build_circular_queue(
    depth: int = DEFAULT_DEPTH,
    trans: Optional[str] = None,
    policy: Optional[ResourcePolicy] = None,
    config: Optional[EngineConfig] = None,
) -> FSM:
    """Build the circular queue with pointer width ``ceil(log2(depth))``.

    ``config`` carries the engine knobs; ``trans=`` directly is deprecated
    (see :meth:`~repro.fsm.builder.CircuitBuilder.build`).
    """
    config = _coalesce_trans("build_circular_queue", config, trans)
    if depth < 2 or depth & (depth - 1):
        raise ValueError("depth must be a power of two >= 2")
    width = int(math.log2(depth))
    b = CircuitBuilder(f"circular_queue{depth}")
    push = b.input("push")
    pop = b.input("pop")
    stall = b.input("stall")
    clear = b.input("clear")
    reset = b.input("reset")

    rd_bits = [f"rd{i}" for i in range(width)]
    wr_bits = [f"wr{i}" for i in range(width)]

    zero = Or((clear, reset))
    freeze = And((stall, Not(zero)))

    same_ptr = parse_expr("rd = wr")
    full = And((same_ptr, Var("wrap")))
    empty = And((same_ptr, Not(Var("wrap"))))
    do_push = And((push, Not(stall), Not(zero), Not(full)))
    do_pop = And((pop, Not(stall), Not(zero), Not(empty)))

    top = depth - 1
    wr_wraps = And((do_push, parse_expr(f"wr = {top}")))
    rd_wraps = And((do_pop, parse_expr(f"rd = {top}")))

    wr_next = increment_mod_bits(wr_bits, depth)
    rd_next = increment_mod_bits(rd_bits, depth)
    for i, bit in enumerate(wr_bits):
        advanced = mux(do_push, wr_next[i], Var(bit))
        b.latch(bit, init=False, next_=mux(zero, FALSE_EXPR, advanced))
    for i, bit in enumerate(rd_bits):
        advanced = mux(do_pop, rd_next[i], Var(bit))
        b.latch(bit, init=False, next_=mux(zero, FALSE_EXPR, advanced))

    wrap_toggled = Xor(Var("wrap"), Xor(wr_wraps, rd_wraps))
    b.latch("wrap", init=False, next_=mux(zero, FALSE_EXPR, wrap_toggled))

    b.word("rd", rd_bits)
    b.word("wr", wr_bits)
    b.define("full", full)
    b.define("empty", empty)
    return b.build(config=config, policy=policy)


def _bundle(parts: List[CtlFormula]) -> CtlFormula:
    if len(parts) == 1:
        return parts[0]
    return CtlAnd(tuple(parts))


def _ops(depth: int) -> dict:
    """Antecedent fragments shared by the wrap properties."""
    top = depth - 1
    return {
        "idle": "!stall & !clear & !reset",
        "top": top,
    }


def circular_queue_wrap_properties(
    depth: int = DEFAULT_DEPTH, stage: str = "initial"
) -> List[CtlFormula]:
    """The wrap-bit suites of the paper's narrative.

    ``stage="initial"`` — 5 properties: reset, clear, push-wraparound
    toggles, pop-wraparound toggles, simultaneous wraparounds cancel.
    These verify but leave most of the state space uncovered (the paper
    measured 60.08%).

    ``stage="extended"`` — the initial five plus three more written after
    inspecting the holes: non-wraparound pushes and pops preserve the wrap
    bit, and an idle cycle preserves it.  Still short of 100%: no property
    constrains the wrap bit on stalled cycles.
    """
    if stage not in ("initial", "extended"):
        raise ValueError(f"unknown stage {stage!r}")
    frag = _ops(depth)
    idle, top = frag["idle"], frag["top"]
    props: List[CtlFormula] = []
    props.append(parse_ctl("AG (reset -> AX !wrap)"))
    props.append(parse_ctl("AG (clear & !reset -> AX !wrap)"))
    props.append(_bundle([
        parse_ctl(
            f"AG ({idle} & push & wr = {top} & !full & !wrap "
            f"& !(pop & rd = {top} & !empty) -> AX wrap)"
        ),
        parse_ctl(
            f"AG ({idle} & push & wr = {top} & !full & wrap "
            f"& !(pop & rd = {top} & !empty) -> AX !wrap)"
        ),
    ]))
    props.append(_bundle([
        parse_ctl(
            f"AG ({idle} & pop & rd = {top} & !empty & wrap "
            f"& !(push & wr = {top} & !full) -> AX !wrap)"
        ),
        parse_ctl(
            f"AG ({idle} & pop & rd = {top} & !empty & !wrap "
            f"& !(push & wr = {top} & !full) -> AX wrap)"
        ),
    ]))
    # Quiescence in the common (unwrapped) regime: the engineer writes the
    # !wrap side only, which is why half of the wrapped states stay
    # unchecked after this stage.
    props.append(parse_ctl(f"AG ({idle} & !push & !pop & !wrap -> AX !wrap)"))
    if stage == "initial":
        return props

    # The three extended properties, written after inspecting the holes:
    # ordinary (non-wraparound) traffic preserves the wrap bit, and
    # simultaneous wraparounds cancel.  The antecedents still assume the
    # common-case polarities and never mention `stall`, so the full-queue
    # wrapped states (reachable while stalled) remain unchecked.
    props.append(parse_ctl(
        f"AG ({idle} & push & wr != {top} & !full & !wrap "
        f"& !(pop & rd = {top}) -> AX !wrap)"
    ))
    props.append(parse_ctl(
        f"AG ({idle} & pop & rd != {top} & !empty & wrap "
        f"& !(push & wr = {top}) -> AX wrap)"
    ))
    props.append(_bundle([
        parse_ctl(
            f"AG ({idle} & push & wr = {top} & !full "
            f"& pop & rd = {top} & !empty & wrap -> AX wrap)"
        ),
        parse_ctl(
            f"AG ({idle} & push & wr = {top} & !full "
            f"& pop & rd = {top} & !empty & !wrap -> AX !wrap)"
        ),
    ]))
    return props


def circular_queue_wrap_stall_property(depth: int = DEFAULT_DEPTH) -> CtlFormula:
    """The hole-closing property: the wrap bit is unchanged on stalled cycles.

    "A property was added to specify that the wrap bit remains unchanged for
    this case and 100% coverage was achieved."
    """
    return _bundle([
        parse_ctl("AG (stall & !clear & !reset & !wrap -> AX !wrap)"),
        parse_ctl("AG (stall & !clear & !reset & wrap -> AX wrap)"),
    ])


def circular_queue_full_properties(depth: int = DEFAULT_DEPTH) -> List[CtlFormula]:
    """The two full-signal properties (100% coverage for observed ``full``)."""
    top = depth - 1
    return [
        # The queue reports full exactly when the comparator fires; one
        # behavioural check: the final push into the last slot raises full.
        _bundle([
            parse_ctl(
                "AG (!stall & !clear & !reset & push & !pop & !full "
                f"& wr = {top} & rd = 0 & !wrap -> AX full)"
            ),
            parse_ctl(
                "AG (!stall & !clear & !reset & pop & !push & full -> AX !full)"
            ),
        ]),
        # Full is stable when nothing moves, and clears on reset.
        _bundle([
            parse_ctl("AG (stall & !clear & !reset & full -> AX full)"),
            parse_ctl("AG (stall & !clear & !reset & !full -> AX !full)"),
            parse_ctl("AG (!stall & !clear & !reset & !push & !pop & full -> AX full)"),
            parse_ctl(
                "AG (!stall & !clear & !reset & !push & !pop & !full -> AX !full)"
            ),
            parse_ctl("AG (reset -> AX !full)"),
            parse_ctl("AG (clear -> AX !full)"),
            parse_ctl("AG (!stall & !clear & !reset & push & !pop & !full "
                      "-> AX (full -> !empty))"),
        ]),
    ]


def circular_queue_empty_properties(depth: int = DEFAULT_DEPTH) -> List[CtlFormula]:
    """The two empty-signal properties (100% coverage for observed ``empty``)."""
    return [
        _bundle([
            parse_ctl("AG (reset -> AX empty)"),
            parse_ctl("AG (clear -> AX empty)"),
            parse_ctl(
                "AG (!stall & !clear & !reset & push & !pop & empty -> AX !empty)"
            ),
        ]),
        _bundle([
            parse_ctl("AG (stall & !clear & !reset & empty -> AX empty)"),
            parse_ctl("AG (stall & !clear & !reset & !empty -> AX !empty)"),
            parse_ctl(
                "AG (!stall & !clear & !reset & !push & !pop & empty -> AX empty)"
            ),
            parse_ctl(
                "AG (!stall & !clear & !reset & !push & !pop & !empty -> AX !empty)"
            ),
            parse_ctl(
                "AG (!stall & !clear & !reset & pop & !push & full -> AX !empty)"
            ),
        ]),
    ]
