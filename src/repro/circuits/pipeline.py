"""Circuit 3 of the paper: the instruction-decode pipeline.

"Circuit 3 is a pipeline in the instruction decode stage of the processor.
The width of the pipeline datapath was abstracted to a single bit.
Properties were verified on this signal to check the correct staging of data
through the pipeline ... These properties generally took the form that an
input to the pipeline will eventually appear at the output given certain
fairness conditions on the stalls. ... Coverage was increased to 100% by
identifying uncovered states and enhancing the set of properties. The
biggest hole in our pipeline control verification was that we ignored the
fact that the pipeline output retains its value for 3 cycles while data is
being processed by a state machine connected to the end of the pipeline."

Design: a 3-stage pipeline with valid/data bits per stage, a ``stall``
input, and — the key element of the narrative — a hold state machine at the
output: whenever a new value reaches stage 3, a 2-bit counter freezes the
pipeline for the arrival cycle plus two more (the output "retains its value
for 3 cycles").  The pipeline advances only when ``!stall`` and the hold
counter is idle.  Fairness: ``!stall`` holds infinitely often.

The initial 8-property suite checks staging with the paper's nested-Until
flavour (``AG (p1 -> A[p2 U A[p3 U p4]])``) plus stall retention, but never
mentions the hold counter — leaving the hold-period states uncovered
(the paper measured 74.36%).  The augmented suite adds the retention
properties and reaches 100%.
"""

from __future__ import annotations

from typing import List, Optional

from ..bdd import ResourcePolicy
from ..ctl.ast import CtlFormula
from ..ctl.parser import parse_ctl
from ..engine import EngineConfig, _coalesce_trans
from ..expr.arith import mux
from ..expr.ast import And, Not, Var
from ..expr.parser import parse_expr
from ..fsm.builder import CircuitBuilder
from ..fsm.fsm import FSM

__all__ = [
    "build_pipeline",
    "pipeline_output_properties",
    "pipeline_retention_properties",
    "pipeline_augmented_properties",
    "HOLD_CYCLES",
]

#: The output is retained for this many cycles per arrival (paper: 3).
HOLD_CYCLES = 3


def build_pipeline(
    stages: int = 3,
    trans: Optional[str] = None,
    policy: Optional[ResourcePolicy] = None,
    config: Optional[EngineConfig] = None,
) -> FSM:
    """Build the ``stages``-stage pipeline with the output hold state machine.

    With the default ``stages=3`` (the paper's circuit) the state variables
    are per-stage valid/data bits (``v1,d1,v2,d2,v3,d3``), the 2-bit hold
    counter ``h``, and the free inputs ``in_valid``, ``in_data`` and
    ``stall`` — 11 variables, the same order of magnitude as the paper's
    15-variable final model.  Larger ``stages`` values widen the datapath
    with more ``vK,dK`` pairs (the property suites below are written for
    the 3-stage shape only); the partition benchmark uses widened instances
    to measure mono vs partitioned image costs.  ``config`` carries the
    engine knobs; ``trans=`` directly is deprecated (see
    :meth:`~repro.fsm.builder.CircuitBuilder.build`).
    """
    config = _coalesce_trans("build_pipeline", config, trans)
    if stages < 2:
        raise ValueError("the pipeline needs at least 2 stages")
    b = CircuitBuilder(f"pipeline{stages}")
    in_valid = b.input("in_valid")
    in_data = b.input("in_data")
    stall = b.input("stall")

    hold_busy = parse_expr("h != 0")
    advance = And((Not(stall), Not(hold_busy)))

    def staged(valid_src: Var, data_src: Var, valid_dst: str, data_dst: str):
        b.latch(valid_dst, init=False, next_=mux(advance, valid_src, Var(valid_dst)))
        b.latch(data_dst, init=False, next_=mux(advance, data_src, Var(data_dst)))

    prev_v, prev_d = in_valid, in_data
    for k in range(1, stages + 1):
        staged(prev_v, prev_d, f"v{k}", f"d{k}")
        prev_v, prev_d = Var(f"v{k}"), Var(f"d{k}")

    # Hold counter: set to HOLD_CYCLES-1 (= 2) when a new valid value
    # arrives at the last stage, then counts down unconditionally (the
    # downstream state machine processes regardless of pipeline stalls).
    # With the sequence 0 -> 2 -> 1 -> 0 the per-bit logic collapses to:
    #   h0' = 1  iff  h == 2          (the 2 -> 1 step)
    #   h1' = 1  iff  a value arrives (the 0 -> 2 step; arrival implies h=0)
    arriving = And((advance, Var(f"v{stages - 1}")))
    b.latch("h0", init=False, next_=parse_expr("h = 2"))
    b.latch("h1", init=False, next_=arriving)
    b.word("h", ["h0", "h1"])

    b.define("output", f"d{stages}")
    b.define("out_valid", f"v{stages}")
    b.fairness("!stall")
    return b.build(config=config, policy=policy)


def pipeline_output_properties() -> List[CtlFormula]:
    """The initial 8-property suite for observed signal ``output``.

    Nested-Until staging from stages 1 and 2, next-cycle staging into the
    output, and stall retention — but nothing about the hold counter, so
    the hold-period states are left uncovered.
    """
    props: List[CtlFormula] = []
    for v in (0, 1):
        d = f"d1 = {v}"
        props.append(parse_ctl(
            f"AG (v1 & d1 = {v} -> "
            f"A [v1 & d1 = {v} U A [v2 & d2 = {v} U v3 & output = {v}]])"
        ))
    for v in (0, 1):
        props.append(parse_ctl(
            f"AG (v2 & d2 = {v} -> A [v2 & d2 = {v} U v3 & output = {v}])"
        ))
    for v in (0, 1):
        props.append(parse_ctl(
            f"AG (!stall & h = 0 & v2 & d2 = {v} -> AX (v3 & output = {v}))"
        ))
    for v in (0, 1):
        props.append(parse_ctl(
            f"AG (stall & h = 0 & v3 & output = {v} -> AX output = {v})"
        ))
    return props


def pipeline_retention_properties() -> List[CtlFormula]:
    """The hole-closing properties: the output is retained while the hold
    state machine is busy (the paper's "biggest hole")."""
    props: List[CtlFormula] = []
    for v in (0, 1):
        props.append(parse_ctl(
            f"AG (h != 0 & output = {v} -> AX output = {v})"
        ))
    return props


def pipeline_augmented_properties() -> List[CtlFormula]:
    """Initial suite plus retention: 100% coverage for ``output``."""
    return pipeline_output_properties() + pipeline_retention_properties()
