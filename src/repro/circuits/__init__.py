"""The paper's evaluation circuits and their staged property suites.

* :mod:`~repro.circuits.counter` — the Section 1 modulo-5 counter.
* :mod:`~repro.circuits.priority_buffer` — Circuit 1, with the planted
  escaped bug and the hole-closing property that reveals it.
* :mod:`~repro.circuits.circular_queue` — Circuit 2, with the three wrap
  suites (initial / extended / +stall property).
* :mod:`~repro.circuits.pipeline` — Circuit 3, with fairness, nested-Until
  staging properties and the hold-period coverage hole.
* :mod:`~repro.circuits.toy` — the explicit graphs of Figures 1-3.
"""

from .circular_queue import (
    DEFAULT_DEPTH,
    build_circular_queue,
    circular_queue_empty_properties,
    circular_queue_full_properties,
    circular_queue_wrap_properties,
    circular_queue_wrap_stall_property,
)
from .counter import build_counter, counter_partial_properties, counter_properties
from .pipeline import (
    HOLD_CYCLES,
    build_pipeline,
    pipeline_augmented_properties,
    pipeline_output_properties,
    pipeline_retention_properties,
)
from .priority_buffer import (
    DEFAULT_CAPACITY,
    build_priority_buffer,
    priority_buffer_hi_properties,
    priority_buffer_lo_augmented_properties,
    priority_buffer_lo_hole_property,
    priority_buffer_lo_properties,
)
from .toy import (
    FIGURE1_FORMULA,
    FIGURE2_FORMULA,
    FIGURE3_FORMULA,
    figure1_graph,
    figure2_graph,
    figure3_graph,
)

__all__ = [
    "build_counter",
    "counter_properties",
    "counter_partial_properties",
    "build_priority_buffer",
    "priority_buffer_hi_properties",
    "priority_buffer_lo_properties",
    "priority_buffer_lo_hole_property",
    "priority_buffer_lo_augmented_properties",
    "DEFAULT_CAPACITY",
    "build_circular_queue",
    "circular_queue_wrap_properties",
    "circular_queue_wrap_stall_property",
    "circular_queue_full_properties",
    "circular_queue_empty_properties",
    "DEFAULT_DEPTH",
    "build_pipeline",
    "pipeline_output_properties",
    "pipeline_retention_properties",
    "pipeline_augmented_properties",
    "HOLD_CYCLES",
    "figure1_graph",
    "figure2_graph",
    "figure3_graph",
    "FIGURE1_FORMULA",
    "FIGURE2_FORMULA",
    "FIGURE3_FORMULA",
]
