"""The explicit state graphs of the paper's Figures 1-3.

Each function returns an :class:`~repro.fsm.explicit.ExplicitGraph` drawn
exactly as in the paper, for use by the figure benchmarks and tests:

* Figure 1 — covered state for ``AG (p1 -> AX AX q)``;
* Figure 2 — the ``A[p1 U q]`` chain where raw Definition 3 covers nothing;
* Figure 3 — the ``traverse``/``firstreached`` sets of ``A[f1 U f2]``.
"""

from __future__ import annotations

from ..fsm.explicit import ExplicitGraph

__all__ = [
    "figure1_graph",
    "figure2_graph",
    "figure3_graph",
    "FIGURE1_FORMULA",
    "FIGURE2_FORMULA",
    "FIGURE3_FORMULA",
]

FIGURE1_FORMULA = "AG (p1 -> AX AX q)"
FIGURE2_FORMULA = "A [p1 U q]"
FIGURE3_FORMULA = "A [f1 U f2]"


def figure1_graph() -> ExplicitGraph:
    """Figure 1: only the state two steps after the ``p1`` state is covered.

    The ``other_q`` state also satisfies ``q`` but is "not critical to the
    validity of the given formula" (paper), hence uncovered.
    """
    g = ExplicitGraph("figure1", signals=["p1", "q"])
    g.state("init", labels={"p1"}, initial=True)
    g.state("mid", labels=set())
    g.state("marked", labels={"q"})
    g.state("other_q", labels={"q"})
    g.edge("init", "mid")
    g.edge("mid", "marked")
    g.edge("marked", "other_q")
    g.edge("other_q", "other_q")
    return g


def figure2_graph() -> ExplicitGraph:
    """Figure 2: the first ``q`` state also satisfies ``p1`` and a later
    state carries ``q`` again, so flipping ``q`` anywhere on the path never
    falsifies the raw ``A[p1 U q]`` — the transformation is required for
    intuitive coverage."""
    g = ExplicitGraph("figure2", signals=["p1", "q"])
    g.state("s0", labels={"p1"}, initial=True)
    g.state("s1", labels={"p1"})
    g.state("s2", labels={"p1", "q"})
    g.state("s3", labels={"q"})
    g.edge("s0", "s1")
    g.edge("s1", "s2")
    g.edge("s2", "s3")
    g.edge("s3", "s3")
    return g


def figure3_graph() -> ExplicitGraph:
    """Figure 3: two ``f1`` branches feeding ``f2`` states, then a sink.

    ``traverse`` = {a, b, c}; ``firstreached`` = {d, e}.
    """
    g = ExplicitGraph("figure3", signals=["f1", "f2"])
    g.state("a", labels={"f1"}, initial=True)
    g.state("b", labels={"f1"})
    g.state("c", labels={"f1"})
    g.state("d", labels={"f2"})
    g.state("e", labels={"f2"})
    g.state("sink", labels=set())
    g.edge("a", "b")
    g.edge("a", "c")
    g.edge("b", "d")
    g.edge("c", "e")
    g.edge("d", "sink")
    g.edge("e", "sink")
    g.edge("sink", "sink")
    return g
