"""`EngineConfig` — every engine knob in one frozen, serialisable object.

Before this module existed, each engine knob (the transition-relation mode
of PR 2, the GC threshold and auto-reorder switch of PR 3) was threaded by
hand through six layers: CLI flag → ``CoverageJob`` field → job factories →
``build_builtin`` → circuit builder → ``CircuitBuilder.build`` →
``ResourcePolicy``.  Adding a knob meant editing all of them, and none of
the values travelled with the results they shaped.

:class:`EngineConfig` collapses that thread: it is *the* value that moves
through the pipeline, and every transport the pipeline uses has a matching
codec —

* ``from_args`` / ``add_cli_arguments`` / ``to_cli_args`` for argparse
  (the CLI's three subcommands share one parent parser built from it);
* ``to_json`` / ``from_json`` for the suite report
  (``repro-coverage-suite/v2`` embeds one config per job);
* plain dataclass pickling for ``ProcessPoolExecutor`` fan-out.

Adding a knob is now one dataclass field plus its entry in the four codec
methods below — no other layer changes.

The config is deliberately higher-level than
:class:`~repro.bdd.policy.ResourcePolicy`: it exposes the portable,
result-preserving cost knobs a *user* sets, and compiles them to a policy
via :meth:`EngineConfig.policy`.  Code that needs the policy's full knob
set (growth factors per cache, compose-cache generations, ...) can still
construct a ``ResourcePolicy`` directly and hand it to the low-level
builders.

    >>> cfg = EngineConfig(trans="mono", gc_threshold=50_000)
    >>> cfg.to_cli_args()
    ['--trans', 'mono', '--gc-threshold', '50000']
    >>> EngineConfig.from_json(cfg.to_json()) == cfg
    True
"""

from __future__ import annotations

import json
import warnings
from dataclasses import dataclass, fields, replace
from typing import Dict, List, Optional

from .bdd.backends import BACKEND_DICT, BACKEND_NAMES
from .errors import ConfigError
from .obs.telemetry import TELEMETRY_LEVELS, TELEMETRY_OFF

__all__ = [
    "EngineConfig",
    "DEFAULT_CONFIG",
    "TRANS_MONO",
    "TRANS_PARTITIONED",
    "TRANS_MODES",
    "BACKEND_NAMES",
]

#: Execute images through the monolithic transition relation.
TRANS_MONO = "mono"
#: Execute images through the scheduled conjunct chain (the default).
TRANS_PARTITIONED = "partitioned"
#: The valid transition-relation execution modes.
TRANS_MODES = (TRANS_MONO, TRANS_PARTITIONED)

@dataclass(frozen=True)
class EngineConfig:
    """The analysis engine's configuration, as one immutable value.

    Every field is a *cost* knob: any two configs produce byte-identical
    coverage results on the same model; they differ only in how the result
    is computed (image strategy, memory ceiling, cache behaviour).  That
    invariant is what makes it safe to record the config next to the
    result — it documents the run without qualifying the numbers.

    Attributes
    ----------
    trans:
        Transition-relation mode: ``"partitioned"`` (per-latch conjuncts
        with early quantification, the default) or ``"mono"`` (one
        monolithic relation BDD).
    gc_threshold:
        Live-BDD-node threshold for automatic garbage collection.  ``None``
        keeps the engine default; ``0`` disables auto-GC.
    gc_growth:
        Post-collection trigger growth factor (``>= 1.0``); ``1.0`` forces
        a collection at every safe point.  ``None`` keeps the default.
    cache_threshold:
        Combined operation-cache entry cap; ``0`` disables the cap,
        ``None`` keeps the default.
    auto_reorder:
        Enable the automatic variable-sifting hook (off by default).
    telemetry:
        Telemetry level: ``"off"`` (default), ``"counters"`` (cumulative
        engine counters in reports), or ``"spans"`` (full phase spans and
        frontier events — what ``--profile`` and ``--trace`` need).
        Purely observational: results are identical at every level.
    backend:
        BDD node-store/kernel implementation: ``"dict"`` (tuple-keyed
        Python dicts, the default) or ``"array"`` (struct-of-arrays flat
        integer buffers with open-addressed tables).  A storage choice
        only — verdicts, coverage numbers, traces, and even the engine
        work counters are identical across backends.
    """

    trans: str = TRANS_PARTITIONED
    gc_threshold: Optional[int] = None
    gc_growth: Optional[float] = None
    cache_threshold: Optional[int] = None
    auto_reorder: bool = False
    telemetry: str = "off"
    backend: str = BACKEND_DICT

    def __post_init__(self) -> None:
        self.validate()

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def validate(self) -> "EngineConfig":
        """Check every knob; raise :class:`~repro.errors.ConfigError` on the
        first invalid one.  Returns ``self`` so calls chain."""
        if self.trans not in TRANS_MODES:
            raise ConfigError(
                f"unknown transition mode {self.trans!r} "
                f"(valid modes: {', '.join(TRANS_MODES)})"
            )
        if self.gc_threshold is not None and self.gc_threshold < 0:
            raise ConfigError("--gc-threshold must be >= 0")
        if self.gc_growth is not None and self.gc_growth < 1.0:
            raise ConfigError("--gc-growth must be >= 1.0")
        if self.cache_threshold is not None and self.cache_threshold < 0:
            raise ConfigError("--cache-threshold must be >= 0")
        if not isinstance(self.auto_reorder, bool):
            raise ConfigError("auto_reorder must be a bool")
        if self.telemetry not in TELEMETRY_LEVELS:
            raise ConfigError(
                f"unknown telemetry level {self.telemetry!r} "
                f"(valid levels: {', '.join(TELEMETRY_LEVELS)})"
            )
        if self.backend not in BACKEND_NAMES:
            raise ConfigError(
                f"unknown BDD backend {self.backend!r} "
                f"(valid backends: {', '.join(BACKEND_NAMES)})"
            )
        return self

    def with_(self, **changes) -> "EngineConfig":
        """A copy with the given fields replaced (a readable ``replace``)."""
        return replace(self, **changes)

    # ------------------------------------------------------------------
    # Compilation to the low-level engine object
    # ------------------------------------------------------------------

    def policy(self):
        """The :class:`~repro.bdd.policy.ResourcePolicy` this config
        describes, or ``None`` when every resource knob is at its default
        (letting the BDD manager keep its built-in policy)."""
        if (
            self.gc_threshold is None
            and self.gc_growth is None
            and self.cache_threshold is None
            and not self.auto_reorder
        ):
            return None
        from .bdd.policy import ResourcePolicy

        kwargs: Dict[str, object] = {"auto_reorder": self.auto_reorder}
        if self.gc_threshold is not None:
            kwargs["gc_node_threshold"] = self.gc_threshold
        if self.gc_growth is not None:
            kwargs["gc_growth"] = self.gc_growth
        if self.cache_threshold is not None:
            kwargs["cache_entry_threshold"] = self.cache_threshold
        return ResourcePolicy(**kwargs)

    # ------------------------------------------------------------------
    # argparse codec
    # ------------------------------------------------------------------

    @staticmethod
    def add_cli_arguments(parser) -> None:
        """Install the engine flags on ``parser`` (typically a shared
        ``add_help=False`` parent parser reused by every subcommand)."""
        parser.add_argument(
            "--trans", choices=list(TRANS_MODES), default=TRANS_PARTITIONED,
            help=(
                "transition-relation mode: 'partitioned' (per-latch "
                "conjuncts with early quantification, the default) or "
                "'mono' (one monolithic relation BDD); coverage results "
                "are identical, only image-computation cost differs"
            ),
        )
        parser.add_argument(
            "--gc-threshold", type=int, default=None, metavar="NODES",
            help=(
                "live-BDD-node threshold for automatic garbage collection "
                "(0 disables auto-GC; default: the engine's built-in "
                "threshold); a cost/memory knob — coverage results are "
                "identical at any setting"
            ),
        )
        parser.add_argument(
            "--gc-growth", type=float, default=None, metavar="FACTOR",
            help=(
                "post-collection GC trigger growth factor, >= 1.0 "
                "(1.0 collects at every safe point; default: the engine's "
                "built-in factor)"
            ),
        )
        parser.add_argument(
            "--cache-threshold", type=int, default=None, metavar="ENTRIES",
            help=(
                "combined operation-cache entry cap (0 disables the cap; "
                "default: the engine's built-in cap)"
            ),
        )
        parser.add_argument(
            "--auto-reorder", action="store_true",
            help=(
                "enable automatic variable reordering (Rudell sifting) when "
                "the live BDD outgrows its threshold; off by default because "
                "reordering may change the rendering order of --traces output"
            ),
        )
        parser.add_argument(
            "--telemetry", choices=list(TELEMETRY_LEVELS),
            default=TELEMETRY_OFF, metavar="LEVEL",
            help=(
                "telemetry level: 'off' (default), 'counters' (cumulative "
                "engine counters in JSON reports), or 'spans' (full phase "
                "spans and frontier events); purely observational — "
                "results are identical at every level"
            ),
        )
        parser.add_argument(
            "--backend", choices=list(BACKEND_NAMES), default=BACKEND_DICT,
            help=(
                "BDD node-store/kernel implementation: 'dict' (tuple-keyed "
                "Python dicts, the default) or 'array' (struct-of-arrays "
                "flat integer buffers); a storage choice only — results "
                "and work counters are identical across backends"
            ),
        )

    @classmethod
    def from_args(cls, args) -> "EngineConfig":
        """Build (and validate) a config from a parsed argparse namespace."""
        return cls(
            trans=getattr(args, "trans", TRANS_PARTITIONED),
            gc_threshold=getattr(args, "gc_threshold", None),
            gc_growth=getattr(args, "gc_growth", None),
            cache_threshold=getattr(args, "cache_threshold", None),
            auto_reorder=bool(getattr(args, "auto_reorder", False)),
            telemetry=getattr(args, "telemetry", TELEMETRY_OFF),
            backend=getattr(args, "backend", BACKEND_DICT),
        )

    def to_cli_args(self) -> List[str]:
        """The flag tokens that re-create this config — only non-default
        knobs appear, so a default config renders to ``[]``.

        Round-trips through the CLI parser: parsing the returned tokens and
        calling :meth:`from_args` yields an equal config.
        """
        args: List[str] = []
        if self.trans != TRANS_PARTITIONED:
            args += ["--trans", self.trans]
        if self.gc_threshold is not None:
            args += ["--gc-threshold", str(self.gc_threshold)]
        if self.gc_growth is not None:
            args += ["--gc-growth", repr(self.gc_growth)]
        if self.cache_threshold is not None:
            args += ["--cache-threshold", str(self.cache_threshold)]
        if self.auto_reorder:
            args += ["--auto-reorder"]
        if self.telemetry != TELEMETRY_OFF:
            args += ["--telemetry", self.telemetry]
        if self.backend != BACKEND_DICT:
            args += ["--backend", self.backend]
        return args

    # ------------------------------------------------------------------
    # JSON codec
    # ------------------------------------------------------------------

    def to_json(self) -> Dict:
        """A JSON-safe dict with every knob explicit (defaults included),
        so a recorded config is self-describing."""
        return {
            "trans": self.trans,
            "gc_threshold": self.gc_threshold,
            "gc_growth": self.gc_growth,
            "cache_threshold": self.cache_threshold,
            "auto_reorder": self.auto_reorder,
            "telemetry": self.telemetry,
            "backend": self.backend,
        }

    def fingerprint(self) -> str:
        """The canonical one-line JSON rendering of this config — the
        request-key hook for :mod:`repro.serve.keys`.

        Sorted keys and compact separators make the string a pure function
        of the config's *value*; because :meth:`to_json` lists every field
        explicitly (defaults included), any future knob automatically
        becomes part of every request key the serving layer computes — no
        serve-side change needed when a field is added here.

            >>> EngineConfig().fingerprint() == EngineConfig().fingerprint()
            True
            >>> EngineConfig(trans="mono").fingerprint() != \\
            ...     EngineConfig().fingerprint()
            True
        """
        return json.dumps(self.to_json(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, data: Dict) -> "EngineConfig":
        """Inverse of :meth:`to_json`; unknown keys are a
        :class:`~repro.errors.ConfigError` (a config from a future schema
        must not be silently truncated)."""
        if not isinstance(data, dict):
            raise ConfigError(
                f"engine config must be a JSON object, got "
                f"{type(data).__name__}"
            )
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConfigError(
                f"unknown engine config key(s): {', '.join(unknown)} "
                f"(known: {', '.join(sorted(known))})"
            )
        return cls(**data)


#: The configuration used when none is supplied anywhere.
DEFAULT_CONFIG = EngineConfig()


# ----------------------------------------------------------------------
# Deprecated-kwarg folding (the shims' shared machinery)
# ----------------------------------------------------------------------


def _warn_deprecated(message: str, stacklevel: int = 3) -> None:
    """Emit one DeprecationWarning for a legacy entry point.

    Messages start with ``repro:`` so the test suite can escalate exactly
    these warnings to errors (``-W error`` scoped by message prefix)
    without tripping on third-party deprecations.
    """
    warnings.warn(f"repro: {message}", DeprecationWarning, stacklevel=stacklevel)


#: Sentinel distinguishing "not passed" from any real value in the
#: deprecated keyword shims.
_UNSET = object()


def _coalesce_flat(
    where: str,
    config: Optional[EngineConfig],
    trans=_UNSET,
    gc_threshold=_UNSET,
    auto_reorder=_UNSET,
) -> EngineConfig:
    """Resolve ``config=`` against the deprecated flat knob keywords of a
    job-level entry point (``CoverageJob`` and the job factories), warning
    once when any are used.  Passing both is a hard error.

    Values that carry no information — ``trans=None``,
    ``gc_threshold=None``, ``auto_reorder=False``, i.e. the old
    defaults — are treated as not passed, so callers forwarding a
    maybe-None variable do not trip a spurious warning.
    """
    legacy = {
        key: value
        for key, value in (
            ("trans", trans),
            ("gc_threshold", gc_threshold),
            ("auto_reorder", auto_reorder),
        )
        if value is not _UNSET
        and value is not None
        and not (key == "auto_reorder" and value is False)
    }
    if not legacy:
        return config if config is not None else DEFAULT_CONFIG
    if config is not None:
        raise ConfigError(
            f"{where}: pass either config= or the deprecated flat "
            f"keyword(s) {', '.join(sorted(legacy))}, not both"
        )
    _warn_deprecated(
        f"{where}({', '.join(f'{k}=...' for k in sorted(legacy))}) is "
        "deprecated; pass config=EngineConfig(...) instead",
        stacklevel=4,
    )
    return EngineConfig(**legacy)


def _coalesce_trans(
    where: str,
    config: Optional[EngineConfig],
    trans: Optional[str],
) -> EngineConfig:
    """Resolve a ``(config=, trans=)`` pair at a shimmed entry point.

    ``trans=None`` means the caller used the new API; a string means the
    legacy keyword, which warns once and folds into the returned config.
    Passing both is a hard error — silently preferring one would hide a
    real conflict.
    """
    if trans is None:
        return config if config is not None else DEFAULT_CONFIG
    if config is not None:
        raise ConfigError(
            f"{where}: pass either config= or the deprecated trans=, not both"
        )
    _warn_deprecated(
        f"{where}(trans=...) is deprecated; pass "
        f"config=EngineConfig(trans={trans!r}) instead",
        stacklevel=4,
    )
    return EngineConfig(trans=trans)
