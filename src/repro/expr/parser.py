"""Recursive-descent parser for propositional expressions.

Grammar (lowest to highest precedence)::

    expr     := iff
    iff      := implies ( '<->' implies )*
    implies  := or ( '->' implies )?          # right-associative
    or       := xor ( ('|' | 'or') xor )*
    xor      := and ( ('^' | 'xor') and )*
    and      := unary ( ('&' | 'and') unary )*
    unary    := ('!' | 'not') unary | atom
    atom     := 'true' | 'false' | '(' expr ')' | name ( cmp rhs )?
    cmp      := '=' | '==' | '!=' | '<' | '<=' | '>' | '>='
    rhs      := number | name

Comparisons produce :class:`~repro.expr.ast.WordCmp` leaves; a bare name is a
:class:`~repro.expr.ast.Var`.  Numbers may be decimal, ``0x...`` or ``0b...``.

The tokenizer is shared with the CTL parser (:mod:`repro.ctl.parser`).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Union

from ..errors import ParseError
from .ast import (
    And,
    Const,
    Expr,
    Iff,
    Implies,
    Not,
    Or,
    Var,
    WordCmp,
    Xor,
)

__all__ = ["parse_expr", "Token", "tokenize"]

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>0[xX][0-9a-fA-F]+|0[bB][01]+|\d+)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_']*)
  | (?P<op><->|->|==|!=|<=|>=|[()\[\]!&|^<>=,])
    """,
    re.VERBOSE,
)

#: Keywords recognised case-insensitively by the expression layer.
_KEYWORD_OPS = {
    "and": "&",
    "or": "|",
    "xor": "^",
    "not": "!",
}
_CONSTS = {"true": True, "false": False}


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (for error messages)."""

    kind: str  # 'ident' | 'number' | 'op' | 'eof'
    text: str
    position: int


def tokenize(text: str) -> List[Token]:
    """Tokenise ``text``; raises :class:`ParseError` on illegal characters."""
    tokens: List[Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise ParseError(
                f"illegal character {text[pos]!r} at position {pos}", text, pos
            )
        if match.lastgroup != "ws":
            kind = match.lastgroup
            tokens.append(Token(kind, match.group(), pos))
        pos = match.end()
    tokens.append(Token("eof", "", len(text)))
    return tokens


class _Cursor:
    """Shared token-stream cursor used by the expr and CTL parsers."""

    def __init__(self, text: str, tokens: Optional[List[Token]] = None):
        self.text = text
        self.tokens = tokens if tokens is not None else tokenize(text)
        self.index = 0

    def peek(self) -> Token:
        return self.tokens[self.index]

    def advance(self) -> Token:
        token = self.tokens[self.index]
        if token.kind != "eof":
            self.index += 1
        return token

    def accept(self, text: str) -> Optional[Token]:
        token = self.peek()
        if token.kind == "op" and token.text == text:
            return self.advance()
        return None

    def accept_keyword(self, word: str) -> Optional[Token]:
        token = self.peek()
        if token.kind == "ident" and token.text.lower() == word:
            return self.advance()
        return None

    def expect(self, text: str) -> Token:
        token = self.accept(text)
        if token is None:
            actual = self.peek()
            raise ParseError(
                f"expected {text!r} but found {actual.text or 'end of input'!r} "
                f"at position {actual.position}",
                self.text,
                actual.position,
            )
        return token

    def error(self, message: str) -> ParseError:
        token = self.peek()
        return ParseError(
            f"{message} at position {token.position} "
            f"(found {token.text or 'end of input'!r})",
            self.text,
            token.position,
        )


def _parse_number(text: str) -> int:
    lowered = text.lower()
    if lowered.startswith("0x"):
        return int(text, 16)
    if lowered.startswith("0b"):
        return int(text, 2)
    return int(text, 10)


_CMP_TOKENS = {"=": "==", "==": "==", "!=": "!=", "<": "<", "<=": "<=",
               ">": ">", ">=": ">="}


class _ExprParser:
    """Propositional expression parser over a :class:`_Cursor`."""

    def __init__(self, cursor: _Cursor):
        self.cursor = cursor

    def parse(self) -> Expr:
        expr = self.parse_iff()
        token = self.cursor.peek()
        if token.kind != "eof":
            raise self.cursor.error("unexpected trailing input")
        return expr

    # Each level returns as soon as its operators stop matching, so the same
    # methods are reusable as sub-parsers from the CTL grammar.

    def parse_iff(self) -> Expr:
        lhs = self.parse_implies()
        while self.cursor.accept("<->"):
            rhs = self.parse_implies()
            lhs = Iff(lhs, rhs)
        return lhs

    def parse_implies(self) -> Expr:
        lhs = self.parse_or()
        if self.cursor.accept("->"):
            rhs = self.parse_implies()
            return Implies(lhs, rhs)
        return lhs

    def parse_or(self) -> Expr:
        lhs = self.parse_xor()
        while self.cursor.accept("|") or self.cursor.accept_keyword("or"):
            rhs = self.parse_xor()
            lhs = Or((lhs, rhs)) if not isinstance(lhs, Or) else Or(lhs.args + (rhs,))
        return lhs

    def parse_xor(self) -> Expr:
        lhs = self.parse_and()
        while self.cursor.accept("^") or self.cursor.accept_keyword("xor"):
            rhs = self.parse_and()
            lhs = Xor(lhs, rhs)
        return lhs

    def parse_and(self) -> Expr:
        lhs = self.parse_unary()
        while self.cursor.accept("&") or self.cursor.accept_keyword("and"):
            rhs = self.parse_unary()
            lhs = And((lhs, rhs)) if not isinstance(lhs, And) else And(lhs.args + (rhs,))
        return lhs

    def parse_unary(self) -> Expr:
        if self.cursor.accept("!") or self.cursor.accept_keyword("not"):
            return Not(self.parse_unary())
        return self.parse_atom()

    def parse_atom(self) -> Expr:
        if self.cursor.accept("("):
            inner = self.parse_iff()
            self.cursor.expect(")")
            return inner
        token = self.cursor.peek()
        if token.kind == "ident":
            lowered = token.text.lower()
            if lowered in _CONSTS:
                self.cursor.advance()
                return Const(_CONSTS[lowered])
            self.cursor.advance()
            return self._maybe_comparison(token.text)
        raise self.cursor.error("expected an expression")

    def _maybe_comparison(self, name: str) -> Expr:
        token = self.cursor.peek()
        if token.kind == "op" and token.text in _CMP_TOKENS:
            op = _CMP_TOKENS[token.text]
            self.cursor.advance()
            rhs_token = self.cursor.peek()
            rhs: Union[int, str]
            if rhs_token.kind == "number":
                self.cursor.advance()
                rhs = _parse_number(rhs_token.text)
            elif rhs_token.kind == "ident":
                self.cursor.advance()
                rhs = rhs_token.text
            else:
                raise self.cursor.error(
                    "expected a number or name on the right of a comparison"
                )
            return WordCmp(op, name, rhs)
        return Var(name)


def parse_expr(text: str) -> Expr:
    """Parse ``text`` into an :class:`~repro.expr.ast.Expr`.

    >>> str(parse_expr("!stall & count < 5"))
    '!stall & count < 5'
    """
    return _ExprParser(_Cursor(text)).parse()
