"""Propositional expressions over circuit signals.

Public surface: the AST node classes, :func:`parse_expr`,
:func:`expr_to_str`, :func:`evaluate`, and the bit-vector lowering helpers.
"""

from .ast import (
    CMP_OPS,
    FALSE_EXPR,
    TRUE_EXPR,
    And,
    Const,
    Expr,
    Iff,
    Implies,
    Not,
    Or,
    Var,
    WordCmp,
    Xor,
)
from .bitvector import (
    WordTable,
    int_to_bits,
    resolve_words,
    word_equals_const,
    word_equals_word,
    word_less_than_const,
    word_less_than_word,
    word_value,
)
from .evaluator import evaluate
from .parser import parse_expr, tokenize
from .printer import expr_to_str

__all__ = [
    "Expr",
    "Const",
    "Var",
    "Not",
    "And",
    "Or",
    "Xor",
    "Iff",
    "Implies",
    "WordCmp",
    "TRUE_EXPR",
    "FALSE_EXPR",
    "CMP_OPS",
    "parse_expr",
    "tokenize",
    "expr_to_str",
    "evaluate",
    "WordTable",
    "resolve_words",
    "int_to_bits",
    "word_value",
    "word_equals_const",
    "word_less_than_const",
    "word_equals_word",
    "word_less_than_word",
]
