"""Bit-level arithmetic builders for next-state logic.

Circuits in this library (counters, pointers, entry counts) describe their
next-state functions as plain expressions over current signals.  These
helpers construct the per-bit expressions for the usual datapath idioms —
increment, decrement, modulo wrap, multiplexing — so circuit definitions
read at the register-transfer level.

All helpers return :class:`~repro.expr.ast.Expr` trees over the given bit
signal names (LSB first) and are purely combinational.
"""

from __future__ import annotations

from typing import List, Sequence

from .ast import FALSE_EXPR, TRUE_EXPR, And, Const, Expr, Not, Or, Var, Xor
from .bitvector import int_to_bits, word_equals_const

__all__ = [
    "mux",
    "increment_bits",
    "decrement_bits",
    "increment_mod_bits",
    "const_bits",
    "add_const_bits",
    "add_words_bits",
    "conditional_delta_bits",
]


def mux(select: Expr, when_true: Expr, when_false: Expr) -> Expr:
    """2-way multiplexer: ``select ? when_true : when_false``."""
    return Or((And((select, when_true)), And((Not(select), when_false))))


def const_bits(value: int, width: int) -> List[Expr]:
    """Constant word as a list of constant expressions (LSB first)."""
    return [Const(b) for b in int_to_bits(value, width)]


def increment_bits(bits: Sequence[str]) -> List[Expr]:
    """Per-bit expressions for ``word + 1`` (wrapping at 2^width).

    Bit ``i`` of the incremented value is ``bit_i XOR carry_i`` with
    ``carry_0 = 1`` and ``carry_{i+1} = carry_i AND bit_i``.
    """
    out: List[Expr] = []
    carry: Expr = TRUE_EXPR
    for name in bits:
        out.append(Xor(Var(name), carry))
        carry = And((carry, Var(name)))
    return out


def decrement_bits(bits: Sequence[str]) -> List[Expr]:
    """Per-bit expressions for ``word - 1`` (wrapping at 0).

    Bit ``i`` is ``bit_i XOR borrow_i`` with ``borrow_0 = 1`` and
    ``borrow_{i+1} = borrow_i AND NOT bit_i``.
    """
    out: List[Expr] = []
    borrow: Expr = TRUE_EXPR
    for name in bits:
        out.append(Xor(Var(name), borrow))
        borrow = And((borrow, Not(Var(name))))
    return out


def add_const_bits(bits: Sequence[str], constant: int) -> List[Expr]:
    """Per-bit expressions for ``word + constant`` (wrapping at 2^width)."""
    width = len(bits)
    addend = int_to_bits(constant % (1 << width), width)
    out: List[Expr] = []
    carry: Expr = FALSE_EXPR
    for name, add_bit in zip(bits, addend):
        b: Expr = Var(name)
        a: Expr = Const(add_bit)
        out.append(Xor(Xor(b, a), carry))
        # carry-out = majority(b, a, carry)
        carry = Or((And((b, a)), And((b, carry)), And((a, carry))))
    return out


def add_words_bits(a_bits: Sequence[str], b_bits: Sequence[str]) -> List[Expr]:
    """Ripple-carry sum of two words, ``max(widths) + 1`` bits (no overflow).

    Shorter words are zero-extended.  Useful for derived signals such as a
    buffer's total occupancy (``total = hi + lo``).
    """
    width = max(len(a_bits), len(b_bits))

    def bit(word: Sequence[str], i: int) -> Expr:
        return Var(word[i]) if i < len(word) else FALSE_EXPR

    out: List[Expr] = []
    carry: Expr = FALSE_EXPR
    for i in range(width):
        a, b = bit(a_bits, i), bit(b_bits, i)
        out.append(Xor(Xor(a, b), carry))
        carry = Or((And((a, b)), And((a, carry)), And((b, carry))))
    out.append(carry)
    return out


def conditional_delta_bits(
    bits: Sequence[str], increment: Expr, decrement: Expr
) -> List[Expr]:
    """Per-bit next-state for ``word + increment - decrement``.

    ``increment``/``decrement`` are condition expressions; when both or
    neither hold the word is unchanged.  This is the counting idiom of
    entry buffers (accept raises, dequeue lowers, simultaneously they
    cancel).
    """
    inc_only = And((increment, Not(decrement)))
    dec_only = And((decrement, Not(increment)))
    inc = increment_bits(bits)
    dec = decrement_bits(bits)
    return [
        mux(inc_only, inc[i], mux(dec_only, dec[i], Var(name)))
        for i, name in enumerate(bits)
    ]


def increment_mod_bits(bits: Sequence[str], modulus: int) -> List[Expr]:
    """Per-bit expressions for ``(word + 1) mod modulus``.

    The word is assumed to stay within ``[0, modulus)``; when it equals
    ``modulus - 1`` the next value is 0, otherwise ``word + 1``.
    """
    if modulus < 2 or modulus > (1 << len(bits)):
        raise ValueError(
            f"modulus {modulus} out of range for {len(bits)}-bit word"
        )
    at_top = word_equals_const(list(bits), modulus - 1)
    inc = increment_bits(bits)
    return [mux(at_top, FALSE_EXPR, bit) for bit in inc]
