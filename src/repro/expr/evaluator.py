"""Concrete evaluation of expressions under signal assignments.

Used by the explicit-state engine (ground-truth model checking and the
Definition-3 mutation oracle) and by tests as an independent semantics to
cross-check the symbolic path.
"""

from __future__ import annotations

from typing import Mapping, Union

from ..errors import EvaluationError
from .ast import (
    And,
    Const,
    Expr,
    Iff,
    Implies,
    Not,
    Or,
    Var,
    WordCmp,
    Xor,
)
from .bitvector import WordTable, word_value

__all__ = ["evaluate"]


def evaluate(
    expr: Expr,
    assignment: Mapping[str, bool],
    words: Union[WordTable, None] = None,
) -> bool:
    """Evaluate ``expr`` under a total Boolean ``assignment``.

    ``words`` supplies bit lists for :class:`WordCmp` leaves; single-bit
    signals may be compared without being declared as words.
    """
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, Var):
        try:
            return bool(assignment[expr.name])
        except KeyError:
            raise EvaluationError(f"no value for signal {expr.name!r}") from None
    if isinstance(expr, Not):
        return not evaluate(expr.operand, assignment, words)
    if isinstance(expr, And):
        return all(evaluate(a, assignment, words) for a in expr.args)
    if isinstance(expr, Or):
        return any(evaluate(a, assignment, words) for a in expr.args)
    if isinstance(expr, Xor):
        return evaluate(expr.lhs, assignment, words) != evaluate(
            expr.rhs, assignment, words
        )
    if isinstance(expr, Iff):
        return evaluate(expr.lhs, assignment, words) == evaluate(
            expr.rhs, assignment, words
        )
    if isinstance(expr, Implies):
        return (not evaluate(expr.lhs, assignment, words)) or evaluate(
            expr.rhs, assignment, words
        )
    if isinstance(expr, WordCmp):
        return _evaluate_cmp(expr, assignment, words or {})
    raise TypeError(f"unknown expression node {type(expr).__name__}")


def _evaluate_cmp(
    cmp: WordCmp, assignment: Mapping[str, bool], words: WordTable
) -> bool:
    lhs = _value_of(cmp.lhs, assignment, words)
    if isinstance(cmp.rhs, int):
        rhs = cmp.rhs
    else:
        rhs = _value_of(cmp.rhs, assignment, words)
    if cmp.op == "==":
        return lhs == rhs
    if cmp.op == "!=":
        return lhs != rhs
    if cmp.op == "<":
        return lhs < rhs
    if cmp.op == "<=":
        return lhs <= rhs
    if cmp.op == ">":
        return lhs > rhs
    if cmp.op == ">=":
        return lhs >= rhs
    raise EvaluationError(f"unknown comparison {cmp.op!r}")  # pragma: no cover


def _value_of(
    name: str, assignment: Mapping[str, bool], words: WordTable
) -> int:
    if name in words:
        missing = [bit for bit in words[name] if bit not in assignment]
        if missing:
            raise EvaluationError(f"no value for word bits {missing!r}")
        return word_value(words[name], dict(assignment))
    if name in assignment:
        return int(bool(assignment[name]))
    raise EvaluationError(f"no value for word or signal {name!r}")
