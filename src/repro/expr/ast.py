"""Propositional expression AST over named circuit signals.

Expressions are the ``b`` of the paper's grammar: Boolean predicates over the
signals of Definition 1.  They appear as antecedents/consequents inside CTL
formulas, as don't-care sets, and as fairness constraints.

All node classes are immutable; operators are overloaded so properties can be
built programmatically::

    (~Var("stall") & ~Var("reset")).implies(Var("ready"))

Bit-vector comparisons (``count < 5``) are carried as :class:`WordCmp` leaves
and lowered to pure bit-level Boolean structure by
:func:`repro.expr.bitvector.resolve_words` before symbolisation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Tuple, Union

__all__ = [
    "Expr",
    "Const",
    "Var",
    "Not",
    "And",
    "Or",
    "Xor",
    "Iff",
    "Implies",
    "WordCmp",
    "TRUE_EXPR",
    "FALSE_EXPR",
    "CMP_OPS",
]

#: Comparison operators accepted by :class:`WordCmp`.
CMP_OPS = ("==", "!=", "<", "<=", ">", ">=")


class Expr:
    """Base class for propositional expressions."""

    __slots__ = ()

    # -- operator sugar -------------------------------------------------

    def __and__(self, other: "Expr") -> "Expr":
        return And((self, other))

    def __or__(self, other: "Expr") -> "Expr":
        return Or((self, other))

    def __xor__(self, other: "Expr") -> "Expr":
        return Xor(self, other)

    def __invert__(self) -> "Expr":
        return Not(self)

    def implies(self, other: "Expr") -> "Expr":
        """Implication ``self -> other``."""
        return Implies(self, other)

    def iff(self, other: "Expr") -> "Expr":
        """Equivalence ``self <-> other``."""
        return Iff(self, other)

    # -- analysis --------------------------------------------------------

    def atoms(self) -> FrozenSet[str]:
        """Names of all signals (and words) mentioned by this expression."""
        out: set = set()
        _collect_atoms(self, out)
        return frozenset(out)

    def substitute(self, mapping: Dict[str, "Expr"]) -> "Expr":
        """Replace ``Var`` leaves by expressions (simultaneously)."""
        return _substitute(self, mapping)

    def __str__(self) -> str:
        from .printer import expr_to_str

        return expr_to_str(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self})"


@dataclass(frozen=True, slots=True)
class Const(Expr):
    """The constants ``true`` / ``false``."""

    value: bool


@dataclass(frozen=True, slots=True)
class Var(Expr):
    """A reference to a named Boolean signal."""

    name: str


@dataclass(frozen=True, slots=True)
class Not(Expr):
    """Negation."""

    operand: Expr


@dataclass(frozen=True, slots=True)
class And(Expr):
    """N-ary conjunction (kept n-ary for readable round-tripping)."""

    args: Tuple[Expr, ...]


@dataclass(frozen=True, slots=True)
class Or(Expr):
    """N-ary disjunction."""

    args: Tuple[Expr, ...]


@dataclass(frozen=True, slots=True)
class Xor(Expr):
    """Exclusive or."""

    lhs: Expr
    rhs: Expr


@dataclass(frozen=True, slots=True)
class Iff(Expr):
    """Equivalence."""

    lhs: Expr
    rhs: Expr


@dataclass(frozen=True, slots=True)
class Implies(Expr):
    """Implication."""

    lhs: Expr
    rhs: Expr


@dataclass(frozen=True, slots=True)
class WordCmp(Expr):
    """Comparison of a named bit-vector against a constant or another word.

    ``lhs`` is always a word (or single-bit signal) name; ``rhs`` is either an
    ``int`` constant or another name.  The comparison is unsigned.
    """

    op: str
    lhs: str
    rhs: Union[int, str]

    def __post_init__(self):
        if self.op not in CMP_OPS:
            raise ValueError(f"unknown comparison operator {self.op!r}")


TRUE_EXPR = Const(True)
FALSE_EXPR = Const(False)


def _collect_atoms(expr: Expr, out: set) -> None:
    if isinstance(expr, Var):
        out.add(expr.name)
    elif isinstance(expr, Not):
        _collect_atoms(expr.operand, out)
    elif isinstance(expr, (And, Or)):
        for arg in expr.args:
            _collect_atoms(arg, out)
    elif isinstance(expr, (Xor, Iff, Implies)):
        _collect_atoms(expr.lhs, out)
        _collect_atoms(expr.rhs, out)
    elif isinstance(expr, WordCmp):
        out.add(expr.lhs)
        if isinstance(expr.rhs, str):
            out.add(expr.rhs)
    elif isinstance(expr, Const):
        pass
    else:  # pragma: no cover - defensive
        raise TypeError(f"unknown expression node {type(expr).__name__}")


def _substitute(expr: Expr, mapping: Dict[str, Expr]) -> Expr:
    if isinstance(expr, Var):
        return mapping.get(expr.name, expr)
    if isinstance(expr, Const):
        return expr
    if isinstance(expr, Not):
        return Not(_substitute(expr.operand, mapping))
    if isinstance(expr, And):
        return And(tuple(_substitute(a, mapping) for a in expr.args))
    if isinstance(expr, Or):
        return Or(tuple(_substitute(a, mapping) for a in expr.args))
    if isinstance(expr, Xor):
        return Xor(_substitute(expr.lhs, mapping), _substitute(expr.rhs, mapping))
    if isinstance(expr, Iff):
        return Iff(_substitute(expr.lhs, mapping), _substitute(expr.rhs, mapping))
    if isinstance(expr, Implies):
        return Implies(_substitute(expr.lhs, mapping), _substitute(expr.rhs, mapping))
    if isinstance(expr, WordCmp):
        # Word comparisons name whole vectors; Var-level substitution does
        # not reach inside them.  Lower words first if that is needed.
        return expr
    raise TypeError(f"unknown expression node {type(expr).__name__}")
