"""Bit-vector lowering: word comparisons to pure bit-level Boolean structure.

Circuits declare *words* — named, LSB-first lists of Boolean signals (e.g.
``count = [count0, count1, count2]``).  Properties may compare words against
constants or other words (``count < 5``, ``rd_ptr == wr_ptr``); this module
expands those :class:`~repro.expr.ast.WordCmp` leaves into plain AND/OR/NOT
structure over the bit signals, which is what the FSM symbolises.

All comparisons are unsigned.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..errors import EvaluationError
from .ast import (
    FALSE_EXPR,
    TRUE_EXPR,
    And,
    Const,
    Expr,
    Iff,
    Implies,
    Not,
    Or,
    Var,
    WordCmp,
    Xor,
)

__all__ = [
    "WordTable",
    "resolve_words",
    "word_equals_const",
    "word_less_than_const",
    "word_equals_word",
    "word_less_than_word",
    "word_value",
    "int_to_bits",
]

#: Mapping from word name to its LSB-first list of bit signal names.
WordTable = Dict[str, List[str]]


def int_to_bits(value: int, width: int) -> List[bool]:
    """LSB-first bit decomposition of ``value`` (must fit in ``width``)."""
    if value < 0:
        raise EvaluationError(f"bit-vectors are unsigned; got {value}")
    if value >= (1 << width):
        raise EvaluationError(f"{value} does not fit in {width} bits")
    return [bool((value >> i) & 1) for i in range(width)]


def word_value(bits: Sequence[str], assignment: Dict[str, bool]) -> int:
    """Recompose the integer value of a word under a signal assignment."""
    value = 0
    for i, name in enumerate(bits):
        if assignment[name]:
            value |= 1 << i
    return value


def _bit(name: str, value: bool) -> Expr:
    return Var(name) if value else Not(Var(name))


def word_equals_const(bits: Sequence[str], value: int) -> Expr:
    """``word == value`` as a conjunction of literals."""
    if value >= (1 << len(bits)) or value < 0:
        return FALSE_EXPR
    const_bits = int_to_bits(value, len(bits))
    return And(tuple(_bit(name, b) for name, b in zip(bits, const_bits)))


def word_less_than_const(bits: Sequence[str], value: int) -> Expr:
    """``word < value`` (unsigned) as AND/OR structure over the bits.

    Standard magnitude comparison: the word is smaller iff at some bit
    position where the constant has a 1 the word has a 0, and all more
    significant bits agree.
    """
    if value <= 0:
        return FALSE_EXPR
    if value > (1 << len(bits)):
        return TRUE_EXPR
    if value == (1 << len(bits)):
        return TRUE_EXPR
    const_bits = int_to_bits(value, len(bits))
    terms: List[Expr] = []
    for i in range(len(bits) - 1, -1, -1):  # MSB downwards
        if const_bits[i]:
            higher = [
                _bit(bits[j], const_bits[j]) for j in range(i + 1, len(bits))
            ]
            terms.append(And(tuple(higher + [Not(Var(bits[i]))])))
    if not terms:
        return FALSE_EXPR
    return Or(tuple(terms))


def word_equals_word(lhs: Sequence[str], rhs: Sequence[str]) -> Expr:
    """``lhs == rhs`` bit-wise (shorter word zero-extended)."""
    width = max(len(lhs), len(rhs))
    clauses: List[Expr] = []
    for i in range(width):
        left = Var(lhs[i]) if i < len(lhs) else FALSE_EXPR
        right = Var(rhs[i]) if i < len(rhs) else FALSE_EXPR
        clauses.append(Iff(left, right))
    return And(tuple(clauses))


def word_less_than_word(lhs: Sequence[str], rhs: Sequence[str]) -> Expr:
    """``lhs < rhs`` unsigned (shorter word zero-extended)."""
    width = max(len(lhs), len(rhs))

    def bit(word: Sequence[str], i: int) -> Expr:
        return Var(word[i]) if i < len(word) else FALSE_EXPR

    terms: List[Expr] = []
    for i in range(width - 1, -1, -1):
        higher_equal = [Iff(bit(lhs, j), bit(rhs, j)) for j in range(i + 1, width)]
        terms.append(
            And(tuple(higher_equal + [Not(bit(lhs, i)), bit(rhs, i)]))
        )
    return Or(tuple(terms))


def _lower_cmp(cmp: WordCmp, words: WordTable, known_bools: frozenset) -> Expr:
    """Lower one comparison leaf given the word table."""
    lhs_bits = _bits_for(cmp.lhs, words, known_bools)
    if isinstance(cmp.rhs, int):
        if cmp.op == "==":
            return word_equals_const(lhs_bits, cmp.rhs)
        if cmp.op == "!=":
            return Not(word_equals_const(lhs_bits, cmp.rhs))
        if cmp.op == "<":
            return word_less_than_const(lhs_bits, cmp.rhs)
        if cmp.op == "<=":
            return word_less_than_const(lhs_bits, cmp.rhs + 1)
        if cmp.op == ">":
            return Not(word_less_than_const(lhs_bits, cmp.rhs + 1))
        if cmp.op == ">=":
            return Not(word_less_than_const(lhs_bits, cmp.rhs))
    else:
        rhs_bits = _bits_for(cmp.rhs, words, known_bools)
        if cmp.op == "==":
            return word_equals_word(lhs_bits, rhs_bits)
        if cmp.op == "!=":
            return Not(word_equals_word(lhs_bits, rhs_bits))
        if cmp.op == "<":
            return word_less_than_word(lhs_bits, rhs_bits)
        if cmp.op == "<=":
            return Not(word_less_than_word(rhs_bits, lhs_bits))
        if cmp.op == ">":
            return word_less_than_word(rhs_bits, lhs_bits)
        if cmp.op == ">=":
            return Not(word_less_than_word(lhs_bits, rhs_bits))
    raise EvaluationError(f"unhandled comparison {cmp}")  # pragma: no cover


def _bits_for(name: str, words: WordTable, known_bools: frozenset) -> List[str]:
    if name in words:
        return list(words[name])
    if name in known_bools or not known_bools:
        # A single-bit signal used in a comparison is a width-1 word.
        return [name]
    raise EvaluationError(f"unknown word or signal {name!r} in comparison")


def resolve_words(
    expr: Expr, words: WordTable, known_bools: frozenset = frozenset()
) -> Expr:
    """Rewrite every :class:`WordCmp` leaf into bit-level structure.

    ``known_bools`` (optional) is the set of declared single-bit signal
    names; when provided, comparisons against undeclared names raise
    :class:`~repro.errors.EvaluationError` instead of silently treating the
    name as a 1-bit word.
    """
    if isinstance(expr, WordCmp):
        return _lower_cmp(expr, words, known_bools)
    if isinstance(expr, (Const, Var)):
        return expr
    if isinstance(expr, Not):
        return Not(resolve_words(expr.operand, words, known_bools))
    if isinstance(expr, And):
        return And(tuple(resolve_words(a, words, known_bools) for a in expr.args))
    if isinstance(expr, Or):
        return Or(tuple(resolve_words(a, words, known_bools) for a in expr.args))
    if isinstance(expr, Xor):
        return Xor(
            resolve_words(expr.lhs, words, known_bools),
            resolve_words(expr.rhs, words, known_bools),
        )
    if isinstance(expr, Iff):
        return Iff(
            resolve_words(expr.lhs, words, known_bools),
            resolve_words(expr.rhs, words, known_bools),
        )
    if isinstance(expr, Implies):
        return Implies(
            resolve_words(expr.lhs, words, known_bools),
            resolve_words(expr.rhs, words, known_bools),
        )
    raise TypeError(f"unknown expression node {type(expr).__name__}")
