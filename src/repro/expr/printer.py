"""Precedence-aware pretty-printing of expressions (round-trips the parser)."""

from __future__ import annotations

from .ast import (
    And,
    Const,
    Expr,
    Iff,
    Implies,
    Not,
    Or,
    Var,
    WordCmp,
    Xor,
)

__all__ = ["expr_to_str", "expr_precedence"]

# Binding strength; higher binds tighter.  Mirrors the parser grammar.
_PREC_IFF = 1
_PREC_IMPLIES = 2
_PREC_OR = 3
_PREC_XOR = 4
_PREC_AND = 5
_PREC_UNARY = 6
_PREC_ATOM = 7


def expr_to_str(expr: Expr) -> str:
    """Render ``expr`` with minimal parentheses."""
    return _render(expr, 0)


def expr_precedence(expr: Expr) -> int:
    """Binding strength of the expression's top-level operator.

    The scale matches the CTL printer's, so embedding a rendered expression
    inside a CTL formula can parenthesise it correctly.
    """
    _, prec = _render_prec(expr)
    return prec


def _render(expr: Expr, parent_prec: int) -> str:
    text, prec = _render_prec(expr)
    if prec < parent_prec:
        return f"({text})"
    return text


def _render_prec(expr: Expr):
    if isinstance(expr, Const):
        return ("true" if expr.value else "false"), _PREC_ATOM
    if isinstance(expr, Var):
        return expr.name, _PREC_ATOM
    if isinstance(expr, WordCmp):
        return f"{expr.lhs} {expr.op} {expr.rhs}", _PREC_ATOM
    if isinstance(expr, Not):
        return f"!{_render(expr.operand, _PREC_UNARY + 1)}", _PREC_UNARY
    if isinstance(expr, And):
        parts = [_render(a, _PREC_AND) for a in expr.args]
        return " & ".join(parts), _PREC_AND
    if isinstance(expr, Or):
        parts = [_render(a, _PREC_OR + 1) for a in expr.args]
        return " | ".join(parts), _PREC_OR
    if isinstance(expr, Xor):
        return (
            f"{_render(expr.lhs, _PREC_XOR + 1)} ^ {_render(expr.rhs, _PREC_XOR + 1)}",
            _PREC_XOR,
        )
    if isinstance(expr, Implies):
        # Right-associative: the rhs may be another implication unwrapped.
        lhs = _render(expr.lhs, _PREC_IMPLIES + 1)
        rhs = _render(expr.rhs, _PREC_IMPLIES)
        return f"{lhs} -> {rhs}", _PREC_IMPLIES
    if isinstance(expr, Iff):
        return (
            f"{_render(expr.lhs, _PREC_IFF + 1)} <-> {_render(expr.rhs, _PREC_IFF + 1)}",
            _PREC_IFF,
        )
    raise TypeError(f"unknown expression node {type(expr).__name__}")
