"""Aggregated public API, lazily re-exported as the top-level ``repro``
namespace (see ``repro/__init__.py``)."""

from .analysis import Analysis, AnalysisResult
from .bdd import (
    BDDManager,
    Function,
    ResourcePolicy,
    set_order,
    sift,
    swap_adjacent,
    to_dot,
)
from .circuits import (
    DEFAULT_CAPACITY,
    DEFAULT_DEPTH,
    FIGURE1_FORMULA,
    FIGURE2_FORMULA,
    FIGURE3_FORMULA,
    HOLD_CYCLES,
    build_circular_queue,
    build_counter,
    build_pipeline,
    build_priority_buffer,
    circular_queue_empty_properties,
    circular_queue_full_properties,
    circular_queue_wrap_properties,
    circular_queue_wrap_stall_property,
    counter_partial_properties,
    counter_properties,
    figure1_graph,
    figure2_graph,
    figure3_graph,
    pipeline_augmented_properties,
    pipeline_output_properties,
    pipeline_retention_properties,
    priority_buffer_hi_properties,
    priority_buffer_lo_augmented_properties,
    priority_buffer_lo_hole_property,
    priority_buffer_lo_properties,
)
from .coverage import (
    CoverageEstimator,
    CoverageReport,
    PropertyCoverage,
    depend,
    firstreached,
    format_uncovered_traces,
    mutation_covered,
    mutation_covered_raw,
    trace_to_uncovered,
    traverse,
)
from .ctl import (
    CtlFormula,
    ctl_to_str,
    normalize_for_coverage,
    observability_transform,
    parse_ctl,
)
from .engine import DEFAULT_CONFIG, EngineConfig
from .errors import (
    BDDError,
    ConfigError,
    CoverageError,
    EvaluationError,
    ModelError,
    NotInSubsetError,
    ParseError,
    ReportError,
    ReproError,
    ServeError,
    VerificationError,
)
from .expr import Expr, evaluate, expr_to_str, parse_expr
from .fsm import FSM, CircuitBuilder, ExplicitGraph, ExplicitModel, enumerate_model
from .gen import (
    Disagreement,
    FuzzResult,
    GeneratedModel,
    GenParams,
    check_module,
    generate,
    random_actl,
    random_ctl,
    random_expr,
    random_graph,
    random_module,
    run_fuzz,
    shrink_module,
)
from .lang import (
    ElaboratedModel,
    Module,
    elaborate,
    load_module,
    module_to_str,
    parse_module,
)
from .mc import (
    CheckResult,
    ExplicitModelChecker,
    ModelChecker,
    WorkMeter,
    WorkStats,
    format_trace,
    input_sequence,
)
from .obs import (
    BENCH_WORKLOADS,
    NULL_TELEMETRY,
    BenchResult,
    BenchWorkload,
    Span,
    Telemetry,
    chrome_trace_events,
    compare_result,
    format_profile,
    run_bench,
    run_workload,
    write_baseline,
    write_chrome_trace,
)
from .serve import (
    AnalysisServer,
    ResultCache,
    ServeClient,
    ServeOptions,
    model_key,
    request_key,
    run_server,
)
from .suite import (
    BUILTIN_TARGETS,
    BuiltinTarget,
    CoverageJob,
    JobResult,
    ShardStats,
    build_builtin,
    builtin_jobs,
    default_jobs,
    discover_rml,
    execute_job,
    read_report,
    rml_job,
    run_jobs,
    run_jobs_sharded,
    run_jobs_via_server,
    run_sharded,
    suite_report,
    write_report,
)

__all__ = [
    # facade + engine configuration
    "Analysis", "AnalysisResult", "EngineConfig", "DEFAULT_CONFIG",
    # bdd
    "BDDManager", "Function", "ResourcePolicy", "to_dot", "sift",
    "set_order", "swap_adjacent",
    # expr / ctl
    "Expr", "parse_expr", "expr_to_str", "evaluate",
    "CtlFormula", "parse_ctl", "ctl_to_str", "normalize_for_coverage",
    "observability_transform",
    # fsm
    "FSM", "CircuitBuilder", "ExplicitGraph", "ExplicitModel",
    "enumerate_model",
    # mc
    "ModelChecker", "CheckResult", "ExplicitModelChecker",
    "WorkMeter", "WorkStats", "format_trace", "input_sequence",
    # obs (telemetry + bench)
    "Telemetry", "Span", "NULL_TELEMETRY", "format_profile",
    "chrome_trace_events", "write_chrome_trace",
    "BENCH_WORKLOADS", "BenchWorkload", "BenchResult",
    "run_bench", "run_workload", "write_baseline", "compare_result",
    # coverage
    "CoverageEstimator", "CoverageReport", "PropertyCoverage",
    "depend", "traverse", "firstreached",
    "mutation_covered", "mutation_covered_raw",
    "trace_to_uncovered", "format_uncovered_traces",
    # circuits
    "build_counter", "counter_properties", "counter_partial_properties",
    "build_priority_buffer", "priority_buffer_hi_properties",
    "priority_buffer_lo_properties", "priority_buffer_lo_hole_property",
    "priority_buffer_lo_augmented_properties", "DEFAULT_CAPACITY",
    "build_circular_queue", "circular_queue_wrap_properties",
    "circular_queue_wrap_stall_property", "circular_queue_full_properties",
    "circular_queue_empty_properties", "DEFAULT_DEPTH",
    "build_pipeline", "pipeline_output_properties",
    "pipeline_retention_properties", "pipeline_augmented_properties",
    "HOLD_CYCLES",
    "figure1_graph", "figure2_graph", "figure3_graph",
    "FIGURE1_FORMULA", "FIGURE2_FORMULA", "FIGURE3_FORMULA",
    # lang
    "Module", "ElaboratedModel", "parse_module", "load_module",
    "elaborate", "module_to_str",
    # gen (random scenarios + differential oracle)
    "GenParams", "GeneratedModel", "generate", "random_module",
    "random_expr", "random_actl", "random_ctl", "random_graph",
    "check_module", "Disagreement", "shrink_module", "run_fuzz",
    "FuzzResult",
    # suite
    "CoverageJob", "JobResult", "BuiltinTarget", "BUILTIN_TARGETS",
    "build_builtin", "builtin_jobs", "default_jobs", "discover_rml",
    "rml_job", "execute_job", "run_jobs", "run_jobs_sharded",
    "run_jobs_via_server", "run_sharded", "ShardStats",
    "suite_report", "write_report", "read_report",
    # serve (coverage-as-a-service)
    "AnalysisServer", "ServeOptions", "ServeClient", "ResultCache",
    "run_server", "model_key", "request_key",
    # errors
    "ReproError", "BDDError", "ParseError", "EvaluationError", "ModelError",
    "NotInSubsetError", "VerificationError", "CoverageError", "ConfigError",
    "ReportError", "ServeError",
]
