"""The coverage estimation algorithm — the paper's core contribution.

:class:`CoverageEstimator` implements the Table 1 recursion: the covered set
``C(S0, g)`` of an acceptable ACTL formula ``g`` with respect to start states
``S0`` and an observed signal ``q``::

    C(S0, b)          = S0 & depend(b)
    C(S0, b -> f)     = C(S0 & T(b), f)
    C(S0, AX f)       = C(forward(S0), f)
    C(S0, AG f)       = C(reachable(S0), f)
    C(S0, A[f1 U f2]) = C(traverse(S0,f1,f2), f1) | C(firstreached(S0,f2), f2)
    C(S0, f1 & f2)    = C(S0, f1) | C(S0, f2)

The recursion operates on the *original* formula but computes the covered
set of the *observability-transformed* formula (Definition 5) — this is the
paper's Correctness Theorem, validated empirically against the Definition-3
mutation oracle in the test suite.

Satisfaction sets of sub-formulas (``T(f)``) come from a shared
:class:`~repro.mc.checker.ModelChecker`, so results memoised during
verification are reused during estimation (the paper's complexity remark).

Fairness (Section 4.3): when the FSM carries fairness constraints, all
traversal stays within the fair states (every image is clipped) and the
coverage space is the set of states reachable along fair paths.

Don't-cares (Section 4.2): a user-supplied state predicate excluded from
the coverage space before the percentage is computed.

The recursion is dominated by image computations (``forward``,
``reachable``, ``traverse``, ``firstreached``), all of which go through
:meth:`FSM.image`/:meth:`FSM.preimage` and therefore honour the FSM's
transition-relation mode — partitioned machines (the default) never build
the monolithic relation at all.  Mono and partitioned estimation produce
byte-identical reports (asserted by ``tests/fsm/test_trans_equivalence.py``).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

from ..bdd import Function
from ..ctl.actl import normalize_for_coverage
from ..ctl.ast import (
    AG,
    AU,
    AX,
    Atom,
    CtlAnd,
    CtlFormula,
    CtlImplies,
    formula_atoms,
)
from ..errors import CoverageError, VerificationError
from ..expr.ast import Expr
from ..expr.parser import parse_expr
from ..fsm.fsm import FSM
from ..mc.checker import ModelChecker
from ..mc.stats import WorkMeter
from .functions import depend, firstreached, restricted_forward, traverse
from .report import CoverageReport, PropertyCoverage

__all__ = ["CoverageEstimator"]

ObservedSpec = Union[str, Sequence[str]]
DontCareSpec = Union[None, str, Expr, Function]


class CoverageEstimator:
    """Computes covered sets and coverage reports for verified properties.

    Parameters
    ----------
    fsm:
        The design under verification.
    checker:
        Optional shared model checker.  Passing the instance used for
        verification reuses its memoised satisfaction sets (recommended);
        by default a fresh checker (honouring the FSM's fairness
        constraints) is created.
    """

    def __init__(self, fsm: FSM, checker: Optional[ModelChecker] = None):
        self.fsm = fsm
        self.checker = checker if checker is not None else ModelChecker(fsm)
        if self.checker.fsm is not fsm:
            raise CoverageError("checker is bound to a different FSM")

    # ------------------------------------------------------------------
    # Fairness plumbing
    # ------------------------------------------------------------------

    def _fair_restrict(self) -> Optional[Function]:
        """The fair-state set when fairness is active, else ``None``."""
        if not self.checker.fairness:
            return None
        return self.checker.fair_states()

    def coverage_space(self, dont_care: DontCareSpec = None) -> Function:
        """Reachable states, clipped to fair paths, minus don't-cares."""
        space = self.fsm.reachable()
        restrict = self._fair_restrict()
        if restrict is not None:
            space = space & restrict
        dc = self._dont_care_set(dont_care)
        if dc is not None:
            space = space.diff(dc)
        return space

    def _dont_care_set(self, dont_care: DontCareSpec) -> Optional[Function]:
        if dont_care is None:
            return None
        if isinstance(dont_care, Function):
            return dont_care
        if isinstance(dont_care, str):
            dont_care = parse_expr(dont_care)
        if isinstance(dont_care, Expr):
            return self.fsm.symbolize(dont_care)
        raise CoverageError(
            f"don't-care must be an expression or state set, got "
            f"{type(dont_care).__name__}"
        )

    # ------------------------------------------------------------------
    # Table 1 recursion
    # ------------------------------------------------------------------

    def covered_set(
        self,
        formula: CtlFormula,
        observed: ObservedSpec,
        start: Optional[Function] = None,
        verify: bool = True,
    ) -> Function:
        """The covered set of one property for the observed signal(s).

        ``start`` defaults to the initial states (clipped to fair states
        when fairness is active), i.e. the paper's ``C(SI, g)``.

        With multiple observed signals the result is the union of the
        per-signal covered sets (paper Section 2).  ``verify`` first model
        checks the property and raises
        :class:`~repro.errors.VerificationError` if it fails — Definition 3
        only defines coverage for satisfied properties.
        """
        observed_list = self._observed_list(observed)
        normalized = normalize_for_coverage(formula)
        if verify:
            self._ensure_holds(normalized)
        if start is None:
            # Note: the initial set is NOT clipped to fair states here.
            # Propositional formulas are state formulas — their truth at an
            # initial state is fairness-independent, so flipping the observed
            # signal there falsifies the property even if the state lies on
            # no fair path.  Fair-clipping happens where path quantifiers
            # enter (AX/AG/AU), where unfair states satisfy everything
            # vacuously.
            start = self.fsm.init
        out = self.fsm.empty_set()
        for signal in observed_list:
            out = out | self._covered(start, normalized, signal)
        return out

    def _observed_list(self, observed: ObservedSpec) -> List[str]:
        if isinstance(observed, str):
            names: List[str] = [observed]
        else:
            names = list(observed)
        if not names:
            raise CoverageError("at least one observed signal is required")
        expanded: List[str] = []
        for name in names:
            if name in self.fsm.words:
                # A word as observed signal means each of its bits, with the
                # covered sets unioned (Section 2: multiple observed signals).
                expanded.extend(self.fsm.words[name])
            elif name in self.fsm.signals:
                expanded.append(name)
            else:
                raise CoverageError(
                    f"unknown observed signal {name!r} on {self.fsm.name!r}"
                )
        return expanded

    def _mentions(self, formula: CtlFormula, observed: str) -> bool:
        """Whether the formula mentions ``observed`` directly or via a word."""
        names = formula_atoms(formula)
        if observed in names:
            return True
        return any(
            observed in self.fsm.words.get(name, ()) for name in names
        )

    def _ensure_holds(self, formula: CtlFormula) -> None:
        if not self.checker.holds(formula):
            raise VerificationError(
                f"cannot estimate coverage: property fails on "
                f"{self.fsm.name!r}: {formula}"
            )

    def _covered(
        self, start: Function, formula: CtlFormula, observed: str
    ) -> Function:
        if start.is_false():
            return start
        if not self._mentions(formula, observed):
            # No occurrence of q anywhere below: depend() of every atom is
            # empty, so the covered set is empty.  Pure optimisation.
            return self.fsm.empty_set()
        if isinstance(formula, Atom):
            return start & depend(self.fsm, formula.expr, observed)
        if isinstance(formula, CtlImplies):
            antecedent = self.checker.sat(formula.lhs)
            return self._covered(start & antecedent, formula.rhs, observed)
        if isinstance(formula, AX):
            forward = restricted_forward(self.fsm, start, self._fair_restrict())
            return self._covered(forward, formula.operand, observed)
        if isinstance(formula, AG):
            reach = self._restricted_reachable_from(start)
            return self._covered(reach, formula.operand, observed)
        if isinstance(formula, AU):
            t_f1 = self.checker.sat(formula.lhs)
            t_f2 = self.checker.sat(formula.rhs)
            restrict = self._fair_restrict()
            # A[f1 U f2] is vacuously true at states with no fair path, so
            # such start states contribute no until coverage.
            au_start = start if restrict is None else start & restrict
            left_start = traverse(self.fsm, au_start, t_f1, t_f2, restrict)
            right_start = firstreached(self.fsm, au_start, t_f2, restrict)
            return self._covered(left_start, formula.lhs, observed) | self._covered(
                right_start, formula.rhs, observed
            )
        if isinstance(formula, CtlAnd):
            out = self.fsm.empty_set()
            for arg in formula.args:
                out = out | self._covered(start, arg, observed)
            return out
        raise CoverageError(  # pragma: no cover - normalize guarantees subset
            f"formula outside acceptable subset reached the recursion: {formula}"
        )

    def _restricted_reachable_from(self, start: Function) -> Function:
        restrict = self._fair_restrict()
        if restrict is None:
            if start == self.fsm.init:
                # The common C(SI, AG f) shape: reuse the FSM's cached
                # reachability instead of rerunning the BFS — the paper's
                # remark about sharing results between verification and
                # estimation, applied to the most expensive fixpoint.
                return self.fsm.reachable()
            return self.fsm.reachable_from(start)
        reached = start & restrict
        frontier = reached
        while not frontier.is_false():
            new = (self.fsm.image(frontier) & restrict).diff(reached)
            reached = reached | new
            frontier = new
        return reached

    # ------------------------------------------------------------------
    # Suite-level estimation (Definition 4 + Section 4 methodology)
    # ------------------------------------------------------------------

    def estimate(
        self,
        properties: Iterable[CtlFormula],
        observed: ObservedSpec,
        dont_care: DontCareSpec = None,
        verify: bool = True,
    ) -> CoverageReport:
        """Estimate coverage of a property suite for the observed signal(s).

        Returns a :class:`~repro.coverage.report.CoverageReport` whose
        percentage is Definition 4 computed over the coverage space
        (fair-reachable states minus don't-cares).  Per-property covered
        sets and costs are recorded for Table 2-style reporting.
        """
        observed_list = self._observed_list(observed)
        space = self.coverage_space(dont_care)
        per_property: List[PropertyCoverage] = []
        total = self.fsm.empty_set()
        for formula in properties:
            span = self.fsm.telemetry.span("coverage", property=str(formula))
            with span, WorkMeter(self.fsm.manager) as meter:
                covered = self.covered_set(formula, observed_list, verify=verify)
                covered = covered & space
            per_property.append(
                PropertyCoverage(formula=formula, covered=covered, stats=meter.stats)
            )
            total = total | covered
        return CoverageReport(
            fsm=self.fsm,
            observed=observed_list,
            space=space,
            covered=total,
            per_property=per_property,
        )
