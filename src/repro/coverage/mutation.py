"""The Definition-3 mutation oracle: literal dual-FSM coverage.

Definition 2 of the paper builds, for each state ``s``, a *dual FSM* whose
observed-signal labelling is flipped at exactly ``s``; Definition 3 declares
``s`` covered iff the dual FSM violates the property.  This module
implements that definition literally on an explicit model:

1. normalise the formula and lower its atoms to bit level;
2. apply the observability transformation (Definition 5), introducing the
   shadow signal ``q'`` (same function as ``q``);
3. for each state ``s``: install ``q'`` as ``q`` flipped at ``s`` only and
   model check the transformed formula with the explicit checker;
4. ``s`` is covered iff the check fails.

Exponentially slower than the symbolic Table 1 algorithm — one full model
checking run per state — but a direct transcription of the definition, and
therefore the ground truth against which the estimator's Correctness
Theorem is validated in the test suite.

:func:`mutation_covered_raw` skips the observability transformation, which
is how the paper demonstrates (Figure 2) that raw Definition 3 yields zero
coverage for eventuality formulas.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Set, Union

from ..ctl.actl import normalize_for_coverage
from ..ctl.ast import CtlFormula, map_atoms
from ..ctl.transform import observability_transform, prime_name
from ..errors import VerificationError
from ..expr.ast import Expr
from ..expr.bitvector import resolve_words
from ..fsm.explicit import ExplicitModel
from ..mc.explicit_checker import ExplicitModelChecker

__all__ = [
    "mutation_covered",
    "mutation_covered_raw",
    "reachable_indices",
]


def reachable_indices(model: ExplicitModel) -> Set[int]:
    """States reachable from the model's initial states (explicit BFS)."""
    seen = set(model.initial)
    frontier = list(model.initial)
    while frontier:
        node = frontier.pop()
        for succ in model.successors[node]:
            if succ not in seen:
                seen.add(succ)
                frontier.append(succ)
    return seen


def _lower_atoms(model: ExplicitModel, formula: CtlFormula) -> CtlFormula:
    """Resolve word comparisons in every atom to bit level."""
    known = frozenset(model.signal_values[0]) if model.n else frozenset()
    return map_atoms(formula, lambda e: resolve_words(e, model.words, known))


def _flip_vector(base: List[bool], index: int) -> List[bool]:
    flipped = list(base)
    flipped[index] = not flipped[index]
    return flipped


def _expand_observed(
    model: ExplicitModel, observed: Union[str, Sequence[str]]
) -> List[str]:
    """Resolve observed names to bit-level signals, expanding words.

    Mirrors ``CoverageEstimator._observed_list``: a word name (e.g.
    ``"count"``) means each of its bits, with per-bit covered sets unioned
    (paper Section 2).  Without the expansion a word name would reach
    :meth:`ExplicitModel.signal_vector` — which labels states with the
    word's *bits*, never the word itself — and the oracle would silently
    flip a signal that exists nowhere.
    """
    names = [observed] if isinstance(observed, str) else list(observed)
    expanded: List[str] = []
    for name in names:
        if name in model.words:
            expanded.extend(model.words[name])
        else:
            expanded.append(name)  # signal_vector validates plain names
    return expanded


def mutation_covered(
    model: ExplicitModel,
    formula: CtlFormula,
    observed: Union[str, Sequence[str]],
    fairness: Iterable[Expr] = (),
    candidates: Optional[Iterable[int]] = None,
    verify: bool = True,
) -> Set[int]:
    """Covered state indices per Definition 3 on the transformed formula.

    Parameters
    ----------
    model:
        Explicit Kripke structure.
    formula:
        The property (any sugar allowed; normalised internally).
    observed:
        One or more observed signal names; covered sets are unioned.
    fairness:
        Fairness constraints as expressions (paper Section 4.3).
    candidates:
        State indices to test (default: the reachable states — unreachable
        states never influence satisfaction, hence are never covered).
    verify:
        Check the property actually holds first (coverage of a failing
        property is undefined).
    """
    observed_list = _expand_observed(model, observed)
    normalized = _lower_atoms(model, normalize_for_coverage(formula))
    if verify:
        base_checker = ExplicitModelChecker(model, fairness=fairness)
        if not base_checker.holds(normalized):
            raise VerificationError(
                f"mutation oracle: property fails on the model: {formula}"
            )
    if candidates is None:
        candidates = reachable_indices(model)
    covered: Set[int] = set()
    for signal in observed_list:
        prime = prime_name(signal)
        transformed = observability_transform(normalized, signal, prime)
        base_vector = model.signal_vector(signal)
        for index in candidates:
            overrides = {prime: _flip_vector(base_vector, index)}
            checker = ExplicitModelChecker(
                model, fairness=fairness, overrides=overrides
            )
            if not checker.holds(transformed):
                covered.add(index)
    return covered


def mutation_covered_raw(
    model: ExplicitModel,
    formula: CtlFormula,
    observed: Union[str, Sequence[str]],
    fairness: Iterable[Expr] = (),
    candidates: Optional[Iterable[int]] = None,
    verify: bool = True,
) -> Set[int]:
    """Definition 3 **without** the observability transformation.

    Flips the observed signal itself in the original formula's atoms.  This
    reproduces the paper's Figure 2 observation: eventuality properties get
    counter-intuitive (often zero) coverage without Definition 5.
    """
    observed_list = _expand_observed(model, observed)
    normalized = _lower_atoms(model, normalize_for_coverage(formula))
    if verify:
        base_checker = ExplicitModelChecker(model, fairness=fairness)
        if not base_checker.holds(normalized):
            raise VerificationError(
                f"mutation oracle: property fails on the model: {formula}"
            )
    if candidates is None:
        candidates = reachable_indices(model)
    covered: Set[int] = set()
    for signal in observed_list:
        base_vector = model.signal_vector(signal)
        for index in candidates:
            overrides = {signal: _flip_vector(base_vector, index)}
            checker = ExplicitModelChecker(
                model, fairness=fairness, overrides=overrides
            )
            if not checker.holds(normalized):
                covered.add(index)
    return covered
