"""Traces to uncovered states (paper Section 3, final paragraph).

After inspecting the uncovered-state list, the paper's second methodology
step is to "instruct the tool to generate traces to specific uncovered
states ... via the shortest path and generating an input sequence
corresponding to this path."  These helpers wrap the FSM's ring-based
shortest-path search and the trace formatter for that workflow.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..mc.witness import format_trace
from .report import CoverageReport

__all__ = ["trace_to_uncovered", "format_uncovered_traces"]


def trace_to_uncovered(
    report: CoverageReport, state: Optional[Dict[str, bool]] = None
) -> Optional[List[Dict[str, bool]]]:
    """Shortest trace from an initial state to an uncovered state.

    ``state`` picks a specific hole (a full state assignment); by default
    the nearest uncovered state is targeted.  Returns ``None`` when the
    suite already has full coverage.
    """
    if report.is_fully_covered():
        return None
    target = report.uncovered
    if state is not None:
        target = target & report.fsm.state_cube(state)
    return report.fsm.shortest_trace(target)


def format_uncovered_traces(report: CoverageReport, count: int = 3) -> str:
    """Render traces to up to ``count`` distinct uncovered states."""
    if report.is_fully_covered():
        return "full coverage: no uncovered states to trace"
    fsm = report.fsm
    remaining = report.uncovered
    sections: List[str] = []
    for k in range(count):
        if remaining.is_false():
            break
        trace = fsm.shortest_trace(remaining)
        if trace is None:
            break
        sections.append(
            format_trace(fsm, trace, title=f"trace to uncovered state #{k + 1}")
        )
        # Exclude this hole and pick another for the next trace.
        remaining = remaining.diff(fsm.state_cube(trace[-1]))
    return "\n".join(sections)
