"""Coverage reports: percentages, uncovered states, cubes, and summaries.

A :class:`CoverageReport` captures everything the paper's estimator prints
(Section 3, last paragraph): the coverage percentage (Definition 4), the
list of uncovered states, and — via :mod:`repro.coverage.traces` — input
traces leading to them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..bdd import Function
from ..ctl.ast import CtlFormula
from ..fsm.fsm import FSM
from ..mc.stats import WorkStats

__all__ = ["PropertyCoverage", "CoverageReport"]


@dataclass
class PropertyCoverage:
    """Coverage contribution of a single verified property."""

    formula: CtlFormula
    #: Covered states (within the coverage space) from this property alone.
    covered: Function
    #: Cost of computing this property's covered set.
    stats: WorkStats


@dataclass
class CoverageReport:
    """Result of estimating coverage of a property suite for observed signals.

    Attributes
    ----------
    fsm:
        The machine coverage was computed on.
    observed:
        The observed signal names (multiple signals union their covered
        sets, as in Section 2 of the paper).
    space:
        The coverage space: reachable states, restricted to fair paths when
        fairness constraints exist, minus user don't-cares (Sections 4.2-4.3).
    covered:
        Union of all properties' covered sets, clipped to the space.
    per_property:
        Per-property breakdown (the union of these is ``covered``).
    """

    fsm: FSM
    observed: List[str]
    space: Function
    covered: Function
    per_property: List[PropertyCoverage] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Definition 4
    # ------------------------------------------------------------------

    @property
    def space_count(self) -> int:
        """Number of states in the coverage space."""
        return self.fsm.count_states(self.space)

    @property
    def covered_count(self) -> int:
        """Number of covered states."""
        return self.fsm.count_states(self.covered)

    @property
    def percentage(self) -> float:
        """Definition 4: covered / coverage-space * 100."""
        total = self.space_count
        if total == 0:
            return 100.0
        return 100.0 * self.covered_count / total

    @property
    def uncovered(self) -> Function:
        """The coverage holes: space minus covered."""
        return self.space.diff(self.covered)

    def is_fully_covered(self) -> bool:
        """Whether every state of the space is covered (100%)."""
        return self.uncovered.is_false()

    # ------------------------------------------------------------------
    # Hole inspection
    # ------------------------------------------------------------------

    def uncovered_states(self, limit: int = 32) -> List[Dict[str, bool]]:
        """Up to ``limit`` explicit uncovered states."""
        out: List[Dict[str, bool]] = []
        for state in self.fsm.iter_states(self.uncovered):
            out.append(state)
            if len(out) >= limit:
                break
        return out

    def uncovered_cubes(self, limit: int = 32) -> List[Dict[str, bool]]:
        """Up to ``limit`` cubes (partial assignments) covering the holes.

        Cubes are BDD paths, so each stands for a set of uncovered states —
        a far more readable rendering for wide machines.
        """
        id_to_name = {
            self.fsm.current_ids[v]: v for v in self.fsm.state_vars
        }
        out: List[Dict[str, bool]] = []
        for cube in self.uncovered.iter_cubes():
            out.append({id_to_name[i]: v for i, v in cube.items()})
            if len(out) >= limit:
                break
        return out

    def format_uncovered(self, limit: int = 16) -> str:
        """Human-readable listing of uncovered state cubes."""
        if self.is_fully_covered():
            return "no uncovered states"
        lines = []
        for cube in self.uncovered_cubes(limit):
            lines.append("  " + (self.fsm.format_state(cube) or "<any>"))
        remaining = self.fsm.count_states(self.uncovered)
        lines.insert(0, f"uncovered states ({remaining} of {self.space_count}):")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Summary
    # ------------------------------------------------------------------

    def total_stats(self) -> WorkStats:
        """Aggregate estimation cost across properties."""
        total = WorkStats()
        for prop in self.per_property:
            total = total + prop.stats
        return total

    def summary(self) -> str:
        """One-paragraph summary in the spirit of the paper's Table 2 rows."""
        signals = ", ".join(self.observed)
        lines = [
            f"coverage of {len(self.per_property)} properties for "
            f"observed signal(s) {signals} on {self.fsm.name!r}:",
            f"  covered {self.covered_count} / {self.space_count} "
            f"reachable states = {self.percentage:.2f}%",
        ]
        stats = self.total_stats()
        lines.append(f"  estimation cost: {stats.format()}")
        if not self.is_fully_covered():
            lines.append(self.format_uncovered(limit=8))
        return "\n".join(lines)
