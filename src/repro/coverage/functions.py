"""The set-level functions of the paper's Table 1.

Each function is a symbolic fixpoint over the FSM's transition relation:

* ``depend(b)``   — start states whose satisfaction of the propositional
  formula ``b`` hinges on the observed signal's value:
  ``T(b) & !T(b[q -> !q])``.
* ``forward(S0)`` — one-step image (lives on the FSM).
* ``traverse(S0, f1, f2)`` — states on ``f1 & !f2`` prefixes of until-paths:
  ``S'0 | traverse(forward(S'0), f1, f2)`` with
  ``S'0 = S0 & T(f1) & !T(f2)``.
* ``firstreached(S0, f2)`` — the first ``f2`` states met walking forward:
  ``(S0 & T(f2)) | firstreached(forward(S0 & !T(f2)), f2)``.

The recursions accumulate a visited set so cyclic graphs terminate; the
computed sets equal the paper's recursive definitions (least fixpoints).

``T(f1)``/``T(f2)`` arrive as already-computed satisfaction sets (the
sub-formulas of an Until may themselves be temporal), so these functions are
pure state-set manipulation.  An optional ``restrict`` set (fair states,
paper Section 4.3) clips every forward step.

Every forward step delegates to :meth:`FSM.image`, which executes either a
monolithic relational product or the partitioned early-quantification
chain depending on the machine's ``trans_mode`` — the fixpoints here are
agnostic to the choice and compute identical sets either way.
"""

from __future__ import annotations

from typing import Optional

from ..bdd import Function
from ..expr.ast import Expr
from ..fsm.fsm import FSM

__all__ = ["depend", "traverse", "firstreached", "restricted_forward"]


def depend(fsm: FSM, predicate: Expr, observed: str) -> Function:
    """States where ``predicate`` is true but flipping ``observed`` falsifies it.

    This is Table 1's ``depend(b) = T(b) & !T(b[q -> !q])``.  The flip
    negates the observed signal's *labelling* wherever the formula mentions
    it; other signals' definitions are untouched (Definition 2).
    """
    t_b = fsm.symbolize(predicate)
    t_b_flipped = fsm.symbolize(predicate, flip=frozenset({observed}))
    return t_b & ~t_b_flipped


def restricted_forward(
    fsm: FSM, states: Function, restrict: Optional[Function]
) -> Function:
    """One-step image, clipped to ``restrict`` when given (fair traversal)."""
    image = fsm.image(states)
    if restrict is not None:
        image = image & restrict
    return image


def traverse(
    fsm: FSM,
    start: Function,
    t_f1: Function,
    t_f2: Function,
    restrict: Optional[Function] = None,
) -> Function:
    """States on the ``f1``-prefix of until-paths out of ``start``.

    All states satisfying ``f1 & !f2`` reachable from ``start`` along paths
    that themselves stay within ``f1 & !f2`` — the start-state set for the
    left arm of ``A[f1 U f2]`` coverage.
    """
    keep = t_f1 & ~t_f2
    visited = start & keep
    frontier = visited
    while not frontier.is_false():
        new = (restricted_forward(fsm, frontier, restrict) & keep).diff(visited)
        visited = visited | new
        frontier = new
    return visited


def firstreached(
    fsm: FSM,
    start: Function,
    t_f2: Function,
    restrict: Optional[Function] = None,
) -> Function:
    """The first ``f2`` states encountered walking forward from ``start``.

    States satisfying ``f2`` reachable from ``start`` via a (possibly empty)
    path of ``!f2`` states — the start-state set for the right arm of
    ``A[f1 U f2]`` coverage.
    """
    result = start & t_f2
    continuing = start.diff(t_f2)
    visited = continuing
    while not continuing.is_false():
        step = restricted_forward(fsm, continuing, restrict)
        result = result | (step & t_f2)
        continuing = step.diff(t_f2).diff(visited)
        visited = visited | continuing
    return result
