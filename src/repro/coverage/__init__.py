"""Coverage estimation for symbolic model checking (the paper's contribution).

* :class:`CoverageEstimator` — the symbolic Table 1 algorithm.
* :class:`CoverageReport` / :class:`PropertyCoverage` — results.
* :func:`mutation_covered` — the Definition-3 dual-FSM oracle (ground truth).
* :func:`trace_to_uncovered` — methodology support (Section 4).
* :func:`depend`, :func:`traverse`, :func:`firstreached` — Table 1 set
  functions, exposed for tests and the Figure 3 bench.
"""

from .estimator import CoverageEstimator
from .functions import depend, firstreached, traverse
from .mutation import mutation_covered, mutation_covered_raw, reachable_indices
from .report import CoverageReport, PropertyCoverage
from .traces import format_uncovered_traces, trace_to_uncovered

__all__ = [
    "CoverageEstimator",
    "CoverageReport",
    "PropertyCoverage",
    "depend",
    "traverse",
    "firstreached",
    "mutation_covered",
    "mutation_covered_raw",
    "reachable_indices",
    "trace_to_uncovered",
    "format_uncovered_traces",
]
