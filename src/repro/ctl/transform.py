"""The observability transformation (paper Definition 5).

Given an acceptable ACTL formula ``f`` and an observed signal ``q``, the
transformation introduces a fresh signal ``q'`` defined by the same function
as ``q`` and rewrites::

    phi(b)          = b[q -> q']
    phi(b -> f)     = b -> phi(f)          # the antecedent keeps q!
    phi(AX f)       = AX phi(f)
    phi(AG f)       = AG phi(f)
    phi(A[f U g])   = A[phi(f) U g]  &  A[(f & !g) U phi(g)]
    phi(f & g)      = phi(f) & phi(g)

``q'`` becomes the observed signal of the transformed formula.  The
transformed formula is semantically equivalent to the original (since
``q' == q``), but its syntax pinpoints which occurrences of the observed
signal carry the verification intent: coverage comes from the consequent of
implications, and the two arms of an Until contribute independently.

The symbolic estimator never materialises this transformation (the Table 1
recursion computes the covered set of the transformed formula directly from
the original syntax); it exists for:

* the Definition-3 **mutation oracle** (:mod:`repro.coverage.mutation`),
  which literally builds dual FSMs and model-checks ``phi(f)`` on them —
  this is how the Correctness Theorem is validated empirically;
* documentation/debugging (showing the user what is actually covered).

Note the transformed formula leaves the ACTL subset (``f & !g`` negates a
temporal formula when ``g`` is temporal); it is checked with the full-CTL
checker.
"""

from __future__ import annotations

from ..errors import NotInSubsetError
from ..expr.ast import Expr, Var
from .ast import (
    AG,
    AU,
    AX,
    Atom,
    CtlAnd,
    CtlFormula,
    CtlImplies,
    CtlNot,
    collapse,
)

__all__ = ["observability_transform", "prime_name", "substitute_signal"]


def prime_name(observed: str) -> str:
    """Canonical name of the shadow signal ``q'`` for observed signal ``q``."""
    return observed + "'"


def substitute_signal(expr: Expr, observed: str, replacement: str) -> Expr:
    """Replace every ``Var(observed)`` leaf by ``Var(replacement)``.

    Word comparisons must have been lowered to bit level first; a comparison
    still naming the observed signal would silently dodge the substitution,
    so that case raises.
    """
    from ..expr.ast import WordCmp

    def check_cmp(e: Expr) -> None:
        if isinstance(e, WordCmp) and observed in (e.lhs, e.rhs):
            raise NotInSubsetError(
                f"word comparison {e} mentions observed signal {observed!r}; "
                "lower words to bits before transforming"
            )

    for node in _walk(expr):
        check_cmp(node)
    return expr.substitute({observed: Var(replacement)})


def _walk(expr: Expr):
    from ..expr.ast import And, Iff, Implies, Not, Or, Xor

    yield expr
    if isinstance(expr, Not):
        yield from _walk(expr.operand)
    elif isinstance(expr, (And, Or)):
        for a in expr.args:
            yield from _walk(a)
    elif isinstance(expr, (Xor, Iff, Implies)):
        yield from _walk(expr.lhs)
        yield from _walk(expr.rhs)


def observability_transform(
    formula: CtlFormula, observed: str, prime: str | None = None
) -> CtlFormula:
    """Apply Definition 5 to a normalized acceptable formula.

    Parameters
    ----------
    formula:
        Output of :func:`repro.ctl.actl.normalize_for_coverage` whose atoms
        have already been lowered to bit level.
    observed:
        The observed signal ``q``.
    prime:
        Name for ``q'``; defaults to ``observed + "'"``.
    """
    if prime is None:
        prime = prime_name(observed)

    def phi(f: CtlFormula) -> CtlFormula:
        if isinstance(f, Atom):
            return Atom(substitute_signal(f.expr, observed, prime))
        if isinstance(f, CtlImplies):
            # Antecedent is propositional (validated) and keeps the original q.
            return CtlImplies(f.lhs, phi(f.rhs))
        if isinstance(f, AX):
            return AX(phi(f.operand))
        if isinstance(f, AG):
            return AG(phi(f.operand))
        if isinstance(f, AU):
            left = AU(phi(f.lhs), f.rhs)
            # Collapse (f & !g) into a single atom when both are
            # propositional, keeping the transformed formula in the same
            # collapsed normal form as its input.
            right = AU(collapse(CtlAnd((f.lhs, CtlNot(f.rhs)))), phi(f.rhs))
            return CtlAnd((left, right))
        if isinstance(f, CtlAnd):
            return CtlAnd(tuple(phi(a) for a in f.args))
        raise NotInSubsetError(
            f"observability transform is defined on the acceptable subset "
            f"only; offending node: {f}"
        )

    return phi(formula)
