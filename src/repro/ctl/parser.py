"""Parser for CTL formulas (shares the expression tokenizer).

Grammar (lowest to highest precedence)::

    ctl      := ctl_iff
    ctl_iff  := ctl_impl ( '<->' ctl_impl )*
    ctl_impl := ctl_or ( '->' ctl_impl )?          # right-associative
    ctl_or   := ctl_xor ( ('|' | 'or') ctl_xor )*
    ctl_xor  := ctl_and ( ('^' | 'xor') ctl_and )*
    ctl_and  := unary ( ('&' | 'and') unary )*
    unary    := ('!' | 'not') unary
              | ('AX'|'AG'|'AF'|'EX'|'EG'|'EF') unary
              | 'A' '[' ctl 'U' ctl ']'
              | 'E' '[' ctl 'U' ctl ']'
              | atom
    atom     := 'true' | 'false' | '(' ctl ')' | name ( cmp rhs )?

Temporal keywords are case-sensitive (uppercase), so signals named ``ax`` or
``ag`` remain usable.  After parsing, maximal propositional subtrees are
collapsed into single :class:`~repro.ctl.ast.Atom` leaves.
"""

from __future__ import annotations

from typing import Union

from ..errors import ParseError
from ..expr.ast import Const, Var, WordCmp
from ..expr.parser import _CMP_TOKENS, _Cursor, _parse_number
from .ast import (
    AF,
    AG,
    AU,
    AX,
    EF,
    EG,
    EU,
    EX,
    Atom,
    CtlAnd,
    CtlFormula,
    CtlIff,
    CtlImplies,
    CtlNot,
    CtlOr,
    CtlXor,
    collapse,
)

__all__ = ["parse_ctl"]

_UNARY_TEMPORAL = {
    "AX": AX,
    "AG": AG,
    "AF": AF,
    "EX": EX,
    "EG": EG,
    "EF": EF,
}
_CONSTS = {"true": True, "false": False}


class _CtlParser:
    def __init__(self, cursor: _Cursor):
        self.cursor = cursor

    def parse(self) -> CtlFormula:
        formula = self.parse_iff()
        token = self.cursor.peek()
        if token.kind != "eof":
            raise self.cursor.error("unexpected trailing input")
        return collapse(formula)

    def parse_iff(self) -> CtlFormula:
        lhs = self.parse_implies()
        while self.cursor.accept("<->"):
            lhs = CtlIff(lhs, self.parse_implies())
        return lhs

    def parse_implies(self) -> CtlFormula:
        lhs = self.parse_or()
        if self.cursor.accept("->"):
            return CtlImplies(lhs, self.parse_implies())
        return lhs

    def parse_or(self) -> CtlFormula:
        lhs = self.parse_xor()
        while self.cursor.accept("|") or self.cursor.accept_keyword("or"):
            rhs = self.parse_xor()
            lhs = (
                CtlOr(lhs.args + (rhs,)) if isinstance(lhs, CtlOr) else CtlOr((lhs, rhs))
            )
        return lhs

    def parse_xor(self) -> CtlFormula:
        lhs = self.parse_and()
        while self.cursor.accept("^") or self.cursor.accept_keyword("xor"):
            lhs = CtlXor(lhs, self.parse_and())
        return lhs

    def parse_and(self) -> CtlFormula:
        lhs = self.parse_unary()
        while self.cursor.accept("&") or self.cursor.accept_keyword("and"):
            rhs = self.parse_unary()
            lhs = (
                CtlAnd(lhs.args + (rhs,))
                if isinstance(lhs, CtlAnd)
                else CtlAnd((lhs, rhs))
            )
        return lhs

    def parse_unary(self) -> CtlFormula:
        if self.cursor.accept("!") or self.cursor.accept_keyword("not"):
            return CtlNot(self.parse_unary())
        token = self.cursor.peek()
        if token.kind == "ident":
            ctor = _UNARY_TEMPORAL.get(token.text)
            if ctor is not None:
                self.cursor.advance()
                return ctor(self.parse_unary())
            if token.text in ("A", "E"):
                return self._parse_until(token.text)
        return self.parse_atom()

    def _parse_until(self, quantifier: str) -> CtlFormula:
        # 'A' or 'E' must be followed by '[' to be an until; otherwise it is
        # a plain signal named A/E.
        next_token = self.cursor.tokens[self.cursor.index + 1]
        if not (next_token.kind == "op" and next_token.text == "["):
            return self.parse_atom()
        self.cursor.advance()  # A / E
        self.cursor.expect("[")
        lhs = self.parse_iff()
        until = self.cursor.peek()
        if until.kind == "ident" and until.text == "U":
            self.cursor.advance()
        else:
            raise ParseError(
                f"expected 'U' in until operator at position {until.position}",
                self.cursor.text,
                until.position,
            )
        rhs = self.parse_iff()
        self.cursor.expect("]")
        return AU(lhs, rhs) if quantifier == "A" else EU(lhs, rhs)

    def parse_atom(self) -> CtlFormula:
        if self.cursor.accept("("):
            inner = self.parse_iff()
            self.cursor.expect(")")
            return inner
        token = self.cursor.peek()
        if token.kind == "ident":
            lowered = token.text.lower()
            if lowered in _CONSTS:
                self.cursor.advance()
                return Atom(Const(_CONSTS[lowered]))
            self.cursor.advance()
            return Atom(self._maybe_comparison(token.text))
        raise self.cursor.error("expected a formula")

    def _maybe_comparison(self, name: str):
        token = self.cursor.peek()
        if token.kind == "op" and token.text in _CMP_TOKENS:
            op = _CMP_TOKENS[token.text]
            self.cursor.advance()
            rhs_token = self.cursor.peek()
            rhs: Union[int, str]
            if rhs_token.kind == "number":
                self.cursor.advance()
                rhs = _parse_number(rhs_token.text)
            elif rhs_token.kind == "ident":
                self.cursor.advance()
                rhs = rhs_token.text
            else:
                raise self.cursor.error(
                    "expected a number or name on the right of a comparison"
                )
            return WordCmp(op, name, rhs)
        return Var(name)


def parse_ctl(text: str) -> CtlFormula:
    """Parse ``text`` into a collapsed :class:`~repro.ctl.ast.CtlFormula`.

    >>> str(parse_ctl("AG (!stall -> AX ready)"))
    'AG (!stall -> AX ready)'
    """
    return _CtlParser(_Cursor(text)).parse()
