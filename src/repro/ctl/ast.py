"""CTL formula AST.

The full branching-time logic is represented (both A- and E-quantified
operators plus Boolean connectives); the DAC'99 coverage algorithm itself is
defined on the *acceptable ACTL subset* (see :mod:`repro.ctl.actl`), but the
model checker — and the observability-transformed formulas, which leave the
subset — need the full logic.

Propositional subformulas are held as :class:`Atom` leaves wrapping an
:class:`~repro.expr.ast.Expr`; :func:`collapse` folds propositional operator
applications into single atoms so that e.g. the antecedent of
``!stall & !reset & count < 5 -> AX ...`` becomes one ``Atom``, matching the
paper's ``b -> f`` shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Tuple

from ..expr.ast import (
    TRUE_EXPR,
    And as EAnd,
    Expr,
    Iff as EIff,
    Implies as EImplies,
    Not as ENot,
    Or as EOr,
    Xor as EXor,
)

__all__ = [
    "CtlFormula",
    "Atom",
    "CtlNot",
    "CtlAnd",
    "CtlOr",
    "CtlImplies",
    "CtlIff",
    "CtlXor",
    "AX",
    "AG",
    "AF",
    "AU",
    "EX",
    "EG",
    "EF",
    "EU",
    "TRUE_ATOM",
    "collapse",
    "is_propositional",
    "to_expr",
    "formula_atoms",
    "map_atoms",
]


class CtlFormula:
    """Base class for CTL formulas."""

    __slots__ = ()

    def __and__(self, other: "CtlFormula") -> "CtlFormula":
        return CtlAnd((self, other))

    def __or__(self, other: "CtlFormula") -> "CtlFormula":
        return CtlOr((self, other))

    def __invert__(self) -> "CtlFormula":
        return CtlNot(self)

    def implies(self, other: "CtlFormula") -> "CtlFormula":
        """Implication ``self -> other``."""
        return CtlImplies(self, other)

    def __str__(self) -> str:
        from .printer import ctl_to_str

        return ctl_to_str(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self})"


@dataclass(frozen=True, slots=True)
class Atom(CtlFormula):
    """A propositional leaf (state predicate)."""

    expr: Expr


@dataclass(frozen=True, slots=True)
class CtlNot(CtlFormula):
    operand: CtlFormula


@dataclass(frozen=True, slots=True)
class CtlAnd(CtlFormula):
    args: Tuple[CtlFormula, ...]


@dataclass(frozen=True, slots=True)
class CtlOr(CtlFormula):
    args: Tuple[CtlFormula, ...]


@dataclass(frozen=True, slots=True)
class CtlImplies(CtlFormula):
    lhs: CtlFormula
    rhs: CtlFormula


@dataclass(frozen=True, slots=True)
class CtlIff(CtlFormula):
    lhs: CtlFormula
    rhs: CtlFormula


@dataclass(frozen=True, slots=True)
class CtlXor(CtlFormula):
    lhs: CtlFormula
    rhs: CtlFormula


@dataclass(frozen=True, slots=True)
class AX(CtlFormula):
    """On all paths, ``operand`` holds in the next state."""

    operand: CtlFormula


@dataclass(frozen=True, slots=True)
class AG(CtlFormula):
    """On all paths, ``operand`` holds globally."""

    operand: CtlFormula


@dataclass(frozen=True, slots=True)
class AF(CtlFormula):
    """On all paths, ``operand`` eventually holds (sugar for A[true U f])."""

    operand: CtlFormula


@dataclass(frozen=True, slots=True)
class AU(CtlFormula):
    """On all paths, ``lhs`` holds until ``rhs`` holds (which it must)."""

    lhs: CtlFormula
    rhs: CtlFormula


@dataclass(frozen=True, slots=True)
class EX(CtlFormula):
    """On some path, ``operand`` holds in the next state."""

    operand: CtlFormula


@dataclass(frozen=True, slots=True)
class EG(CtlFormula):
    """On some path, ``operand`` holds globally."""

    operand: CtlFormula


@dataclass(frozen=True, slots=True)
class EF(CtlFormula):
    """On some path, ``operand`` eventually holds."""

    operand: CtlFormula


@dataclass(frozen=True, slots=True)
class EU(CtlFormula):
    """On some path, ``lhs`` holds until ``rhs`` holds."""

    lhs: CtlFormula
    rhs: CtlFormula


TRUE_ATOM = Atom(TRUE_EXPR)

_PROP_CONNECTIVES = (CtlNot, CtlAnd, CtlOr, CtlImplies, CtlIff, CtlXor)
_UNARY_TEMPORAL = (AX, AG, AF, EX, EG, EF)
_BINARY_TEMPORAL = (AU, EU)


def is_propositional(formula: CtlFormula) -> bool:
    """Whether ``formula`` contains no temporal operator."""
    if isinstance(formula, Atom):
        return True
    if isinstance(formula, CtlNot):
        return is_propositional(formula.operand)
    if isinstance(formula, (CtlAnd, CtlOr)):
        return all(is_propositional(a) for a in formula.args)
    if isinstance(formula, (CtlImplies, CtlIff, CtlXor)):
        return is_propositional(formula.lhs) and is_propositional(formula.rhs)
    return False


def _flattened(cls, parts):
    """Build an n-ary And/Or, splicing in same-class children.

    Keeps collapsed formulas in the same shape the parser produces, so
    print -> parse round-trips are structural identities.
    """
    flat = []
    for part in parts:
        if isinstance(part, cls):
            flat.extend(part.args)
        else:
            flat.append(part)
    if len(flat) == 1:
        return flat[0]
    return cls(tuple(flat))


def to_expr(formula: CtlFormula) -> Expr:
    """Convert a propositional formula to a plain expression.

    Raises :class:`ValueError` when the formula is temporal.  Nested
    conjunctions/disjunctions are flattened to the parser's n-ary shape.
    """
    if isinstance(formula, Atom):
        return formula.expr
    if isinstance(formula, CtlNot):
        return ENot(to_expr(formula.operand))
    if isinstance(formula, CtlAnd):
        return _flattened(EAnd, (to_expr(a) for a in formula.args))
    if isinstance(formula, CtlOr):
        return _flattened(EOr, (to_expr(a) for a in formula.args))
    if isinstance(formula, CtlImplies):
        return EImplies(to_expr(formula.lhs), to_expr(formula.rhs))
    if isinstance(formula, CtlIff):
        return EIff(to_expr(formula.lhs), to_expr(formula.rhs))
    if isinstance(formula, CtlXor):
        return EXor(to_expr(formula.lhs), to_expr(formula.rhs))
    raise ValueError(f"formula is temporal: {formula}")


def collapse(formula: CtlFormula) -> CtlFormula:
    """Fold propositional subtrees into single :class:`Atom` leaves.

    The result is semantically identical; every maximal propositional
    subformula becomes one atom, which is the shape the acceptable-subset
    grammar (``b -> f``) and the coverage algorithm expect.  Nested
    conjunctions/disjunctions are flattened and their propositional members
    merged, so collapsed formulas print/parse round-trip structurally.
    """
    if is_propositional(formula):
        return Atom(to_expr(formula))
    if isinstance(formula, CtlNot):
        return CtlNot(collapse(formula.operand))
    if isinstance(formula, (CtlAnd, CtlOr)):
        return _collapse_nary(formula)
    if isinstance(formula, CtlImplies):
        return CtlImplies(collapse(formula.lhs), collapse(formula.rhs))
    if isinstance(formula, CtlIff):
        return CtlIff(collapse(formula.lhs), collapse(formula.rhs))
    if isinstance(formula, CtlXor):
        return CtlXor(collapse(formula.lhs), collapse(formula.rhs))
    if isinstance(formula, _UNARY_TEMPORAL):
        return type(formula)(collapse(formula.operand))
    if isinstance(formula, _BINARY_TEMPORAL):
        return type(formula)(collapse(formula.lhs), collapse(formula.rhs))
    raise TypeError(f"unknown CTL node {type(formula).__name__}")


def _collapse_nary(formula: CtlFormula) -> CtlFormula:
    """Collapse a (partially temporal) n-ary And/Or canonically.

    Same-type children are spliced in, and all propositional members merge
    into one leading atom; the temporal members keep their relative order.
    """
    cls = type(formula)
    expr_cls = EAnd if cls is CtlAnd else EOr
    members = []
    for arg in formula.args:
        collapsed = collapse(arg)
        if isinstance(collapsed, cls):
            members.extend(collapsed.args)
        else:
            members.append(collapsed)
    propositional = [m for m in members if isinstance(m, Atom)]
    temporal = [m for m in members if not isinstance(m, Atom)]
    out = []
    if propositional:
        out.append(Atom(_flattened(expr_cls, (m.expr for m in propositional))))
    out.extend(temporal)
    if len(out) == 1:
        return out[0]
    return cls(tuple(out))


def formula_atoms(formula: CtlFormula) -> FrozenSet[str]:
    """All signal/word names mentioned anywhere in the formula."""
    names: set = set()

    def rec(f: CtlFormula) -> None:
        if isinstance(f, Atom):
            names.update(f.expr.atoms())
        elif isinstance(f, CtlNot):
            rec(f.operand)
        elif isinstance(f, (CtlAnd, CtlOr)):
            for a in f.args:
                rec(a)
        elif isinstance(f, (CtlImplies, CtlIff, CtlXor)):
            rec(f.lhs)
            rec(f.rhs)
        elif isinstance(f, _UNARY_TEMPORAL):
            rec(f.operand)
        elif isinstance(f, _BINARY_TEMPORAL):
            rec(f.lhs)
            rec(f.rhs)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown CTL node {type(f).__name__}")

    rec(formula)
    return frozenset(names)


def map_atoms(formula: CtlFormula, fn) -> CtlFormula:
    """Rebuild the formula with every atom's expression passed through ``fn``."""
    if isinstance(formula, Atom):
        return Atom(fn(formula.expr))
    if isinstance(formula, CtlNot):
        return CtlNot(map_atoms(formula.operand, fn))
    if isinstance(formula, (CtlAnd, CtlOr)):
        return type(formula)(tuple(map_atoms(a, fn) for a in formula.args))
    if isinstance(formula, (CtlImplies, CtlIff, CtlXor)):
        return type(formula)(map_atoms(formula.lhs, fn), map_atoms(formula.rhs, fn))
    if isinstance(formula, _UNARY_TEMPORAL):
        return type(formula)(map_atoms(formula.operand, fn))
    if isinstance(formula, _BINARY_TEMPORAL):
        return type(formula)(map_atoms(formula.lhs, fn), map_atoms(formula.rhs, fn))
    raise TypeError(f"unknown CTL node {type(formula).__name__}")
