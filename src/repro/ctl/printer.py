"""Precedence-aware pretty-printing for CTL formulas."""

from __future__ import annotations

from ..expr.printer import expr_precedence, expr_to_str
from .ast import (
    AF,
    AG,
    AU,
    AX,
    EF,
    EG,
    EU,
    EX,
    Atom,
    CtlAnd,
    CtlFormula,
    CtlIff,
    CtlImplies,
    CtlNot,
    CtlOr,
    CtlXor,
)

__all__ = ["ctl_to_str"]

_PREC_IFF = 1
_PREC_IMPLIES = 2
_PREC_OR = 3
_PREC_XOR = 4
_PREC_AND = 5
_PREC_UNARY = 6
_PREC_ATOM = 7

_UNARY_NAMES = {AX: "AX", AG: "AG", AF: "AF", EX: "EX", EG: "EG", EF: "EF"}


def ctl_to_str(formula: CtlFormula) -> str:
    """Render ``formula`` with minimal parentheses (round-trips the parser)."""
    return _render(formula, 0)


def _render(formula: CtlFormula, parent_prec: int) -> str:
    text, prec = _render_prec(formula)
    if prec < parent_prec:
        return f"({text})"
    return text


def _render_prec(formula: CtlFormula):
    if isinstance(formula, Atom):
        # The expression grammar's precedence scale is aligned with the CTL
        # one, so the atom binds exactly as tightly as its own top operator.
        return expr_to_str(formula.expr), expr_precedence(formula.expr)
    if isinstance(formula, CtlNot):
        return f"!{_render(formula.operand, _PREC_UNARY + 1)}", _PREC_UNARY
    if isinstance(formula, CtlAnd):
        return " & ".join(_render(a, _PREC_AND + 1) for a in formula.args), _PREC_AND
    if isinstance(formula, CtlOr):
        return " | ".join(_render(a, _PREC_OR + 1) for a in formula.args), _PREC_OR
    if isinstance(formula, CtlXor):
        return (
            f"{_render(formula.lhs, _PREC_XOR + 1)} ^ {_render(formula.rhs, _PREC_XOR + 1)}",
            _PREC_XOR,
        )
    if isinstance(formula, CtlImplies):
        return (
            f"{_render(formula.lhs, _PREC_IMPLIES + 1)} -> {_render(formula.rhs, _PREC_IMPLIES)}",
            _PREC_IMPLIES,
        )
    if isinstance(formula, CtlIff):
        return (
            f"{_render(formula.lhs, _PREC_IFF + 1)} <-> {_render(formula.rhs, _PREC_IFF + 1)}",
            _PREC_IFF,
        )
    name = _UNARY_NAMES.get(type(formula))
    if name is not None:
        return f"{name} {_render(formula.operand, _PREC_UNARY)}", _PREC_UNARY
    if isinstance(formula, AU):
        return f"A [{_render(formula.lhs, 0)} U {_render(formula.rhs, 0)}]", _PREC_ATOM
    if isinstance(formula, EU):
        return f"E [{_render(formula.lhs, 0)} U {_render(formula.rhs, 0)}]", _PREC_ATOM
    raise TypeError(f"unknown CTL node {type(formula).__name__}")
