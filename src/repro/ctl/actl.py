"""The paper's acceptable ACTL subset (Section 2.1).

The coverage algorithm is defined for::

    f ::= b | b -> f | AX f | AG f | A[f U g] | f & g

where ``b`` is propositional and ``AF f`` is accepted as sugar for
``A[true U f]``.  The only ACTL construct excluded is disjunction of
temporal formulas.

:func:`normalize_for_coverage` is the single entry point used by the
estimator and the mutation oracle: it collapses propositional subtrees,
desugars ``AF``, and validates membership, raising
:class:`~repro.errors.NotInSubsetError` with a helpful message otherwise.
"""

from __future__ import annotations

from ..errors import NotInSubsetError
from .ast import (
    AF,
    AG,
    AU,
    AX,
    EF,
    EG,
    EU,
    EX,
    TRUE_ATOM,
    Atom,
    CtlAnd,
    CtlFormula,
    CtlIff,
    CtlImplies,
    CtlNot,
    CtlOr,
    CtlXor,
    collapse,
)

__all__ = ["desugar_af", "validate_acceptable", "normalize_for_coverage"]


def desugar_af(formula: CtlFormula) -> CtlFormula:
    """Rewrite every ``AF f`` into ``A[true U f]`` (paper Section 2.1)."""
    if isinstance(formula, Atom):
        return formula
    if isinstance(formula, AF):
        return AU(TRUE_ATOM, desugar_af(formula.operand))
    if isinstance(formula, CtlNot):
        return CtlNot(desugar_af(formula.operand))
    if isinstance(formula, (CtlAnd, CtlOr)):
        return type(formula)(tuple(desugar_af(a) for a in formula.args))
    if isinstance(formula, (CtlImplies, CtlIff, CtlXor)):
        return type(formula)(desugar_af(formula.lhs), desugar_af(formula.rhs))
    if isinstance(formula, (AX, AG, EX, EG, EF)):
        return type(formula)(desugar_af(formula.operand))
    if isinstance(formula, (AU, EU)):
        return type(formula)(desugar_af(formula.lhs), desugar_af(formula.rhs))
    raise TypeError(f"unknown CTL node {type(formula).__name__}")


def validate_acceptable(formula: CtlFormula) -> None:
    """Check membership in the acceptable subset (after collapse/desugar).

    Raises :class:`NotInSubsetError` naming the offending subformula.
    """
    if isinstance(formula, Atom):
        return
    if isinstance(formula, CtlImplies):
        if not isinstance(formula.lhs, Atom):
            raise NotInSubsetError(
                "the antecedent of '->' must be propositional in the "
                f"acceptable ACTL subset; got: {formula.lhs}"
            )
        validate_acceptable(formula.rhs)
        return
    if isinstance(formula, (AX, AG)):
        validate_acceptable(formula.operand)
        return
    if isinstance(formula, AU):
        validate_acceptable(formula.lhs)
        validate_acceptable(formula.rhs)
        return
    if isinstance(formula, CtlAnd):
        for arg in formula.args:
            validate_acceptable(arg)
        return
    if isinstance(formula, CtlOr):
        raise NotInSubsetError(
            "disjunction of temporal formulas is outside the acceptable "
            f"ACTL subset (paper Section 2.1): {formula}"
        )
    if isinstance(formula, CtlNot):
        raise NotInSubsetError(
            f"negation of a temporal formula is not in ACTL: {formula}"
        )
    if isinstance(formula, (EX, EG, EF, EU)):
        raise NotInSubsetError(
            f"existential operators are not in ACTL: {formula}"
        )
    if isinstance(formula, (CtlIff, CtlXor)):
        raise NotInSubsetError(
            f"'<->'/'^' over temporal formulas is outside the subset: {formula}"
        )
    if isinstance(formula, AF):
        raise NotInSubsetError(
            "internal error: AF must be desugared before validation"
        )  # pragma: no cover - normalize_for_coverage desugars first
    raise TypeError(f"unknown CTL node {type(formula).__name__}")


def normalize_for_coverage(formula: CtlFormula) -> CtlFormula:
    """Collapse, desugar ``AF``, and validate the acceptable subset."""
    normalized = desugar_af(collapse(formula))
    validate_acceptable(normalized)
    return normalized
