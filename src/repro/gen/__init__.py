"""``repro.gen`` — seeded random scenarios and the differential oracle.

The scenario-diversity engine of the test strategy: a deterministic
random-model generator (:mod:`repro.gen.model`), a multi-engine
differential oracle (:mod:`repro.gen.oracle`), a greedy reproducer
shrinker (:mod:`repro.gen.shrink`), and the fuzz-campaign driver behind
``repro fuzz`` (:mod:`repro.gen.fuzz`).

    >>> from repro.gen import generate
    >>> gm = generate("docs:0")
    >>> gm.module.name
    'fuzz_docs_0'
    >>> len(gm.module.specs) >= 1 and len(gm.module.observed) >= 1
    True

Everything is a pure function of its seed: the same key regenerates the
same scenario on any platform, under any ``PYTHONHASHSEED``.  See
``docs/testing.md`` for the oracle hierarchy and the reproduction
workflow.
"""

from .fuzz import (
    FUZZ_SCHEMA_ID,
    FuzzFinding,
    FuzzResult,
    case_key,
    run_fuzz,
    write_fuzz_report,
)
from .model import (
    GeneratedModel,
    GenParams,
    generate,
    random_actl,
    random_ctl,
    random_expr,
    random_graph,
    random_module,
)
from .oracle import (
    AXIS_BACKEND,
    AXIS_CONFIGS,
    AXIS_EXPLICIT,
    AXIS_GC,
    AXIS_MONO,
    AXIS_ROUNDTRIP,
    COST_FIELDS,
    DEFAULT_AXES,
    Disagreement,
    check_module,
    comparable_result,
    validate_axes,
)
from .shrink import latch_bits, shrink_module

__all__ = [
    # generation
    "GenParams",
    "GeneratedModel",
    "generate",
    "random_module",
    "random_expr",
    "random_actl",
    "random_ctl",
    "random_graph",
    # oracle
    "AXIS_MONO",
    "AXIS_GC",
    "AXIS_BACKEND",
    "AXIS_EXPLICIT",
    "AXIS_ROUNDTRIP",
    "AXIS_CONFIGS",
    "COST_FIELDS",
    "DEFAULT_AXES",
    "Disagreement",
    "check_module",
    "comparable_result",
    "validate_axes",
    # shrinking
    "shrink_module",
    "latch_bits",
    # fuzzing
    "FUZZ_SCHEMA_ID",
    "FuzzFinding",
    "FuzzResult",
    "run_fuzz",
    "write_fuzz_report",
    "case_key",
]
