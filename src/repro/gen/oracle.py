"""The differential oracle: one scenario, every engine, identical answers.

A coverage number is only as trustworthy as the engine that produced it.
This module runs one generated (model, property-suite) scenario through
every independent implementation the library carries and demands that all
of them agree *byte for byte* on everything a user can observe:

``mono``
    The symbolic pipeline with a monolithic transition relation, compared
    against the partitioned default.  Identical verdicts, coverage sets,
    counterexamples, and uncovered-trace renderings.
``gc``
    The symbolic pipeline under the most aggressive resource policy the
    config can express (collect at every safe point, tiny op caches).
    Resource management must be invisible in results.
``explicit``
    The explicit-state oracle: the model is enumerated into an adjacency
    list and checked with :class:`~repro.mc.ExplicitModelChecker` (pure
    Python sets, no BDDs anywhere).  Verdicts and the reachable-state
    count must match; on small fairness-free models the Definition-3
    mutation oracle re-derives every property's covered set state by
    state and compares it against the symbolic Table-1 recursion.
``backend``
    The symbolic pipeline on the ``array`` BDD backend (struct-of-arrays
    node store, open-addressed tables), compared against the default
    ``dict`` backend.  Node storage must be invisible in results.
``roundtrip``
    The language round trip: printing and re-parsing the module must be
    the identity, and the reprint must reproduce the text — otherwise a
    reproducer file would not denote the failing scenario.
``lint``
    The static analyzer (:mod:`repro.lint`): linting a generated model
    must never raise, must report the same diagnostic codes for the
    module text and its printer round trip (lint-cleanliness survives
    reformatting), and must report zero *error*-severity findings for
    any module the elaborator accepted — an error-severity lint finding
    on a working model is a linter false positive by definition.

:func:`check_module` returns ``None`` on full agreement or the first
:class:`Disagreement`, which carries enough context (axis, field,
expected/actual renderings) to drive the shrinker and the fuzz report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from ..analysis import Analysis
from ..coverage.mutation import mutation_covered
from ..engine import EngineConfig
from ..errors import ReproError
from ..fsm.explicit import enumerate_model
from ..lang.ast import Module
from ..lang.parser import parse_module
from ..lang.printer import module_to_str
from ..mc.explicit_checker import ExplicitModelChecker
from ..mc.witness import format_trace

__all__ = [
    "AXIS_MONO",
    "AXIS_GC",
    "AXIS_BACKEND",
    "AXIS_EXPLICIT",
    "AXIS_ROUNDTRIP",
    "AXIS_LINT",
    "DEFAULT_AXES",
    "AXIS_CONFIGS",
    "COST_FIELDS",
    "Disagreement",
    "comparable_result",
    "check_module",
    "validate_axes",
]

AXIS_MONO = "mono"
AXIS_GC = "gc"
AXIS_BACKEND = "backend"
AXIS_EXPLICIT = "explicit"
AXIS_ROUNDTRIP = "roundtrip"
AXIS_LINT = "lint"

#: Every axis, in checking order (cheap symbolic re-runs first).
DEFAULT_AXES: Tuple[str, ...] = (
    AXIS_MONO, AXIS_GC, AXIS_BACKEND, AXIS_EXPLICIT, AXIS_ROUNDTRIP,
    AXIS_LINT,
)

#: The engine configuration each symbolic axis re-runs under.  The
#: reference run uses the default config (partitioned, default policy,
#: dict backend).
AXIS_CONFIGS: Dict[str, EngineConfig] = {
    AXIS_MONO: EngineConfig(trans="mono"),
    AXIS_GC: EngineConfig(gc_threshold=1, gc_growth=1.0, cache_threshold=64),
    AXIS_BACKEND: EngineConfig(backend="array"),
}

#: Result fields that measure cost, not meaning — excluded from comparison
#: (two engines may of course spend different effort on the same answer).
COST_FIELDS = (
    "config", "seconds", "nodes_created", "gc_runs", "gc_seconds",
    "gc_freed", "reorder_runs", "cache_entries", "peak_live_nodes",
    "metrics",
)

#: Explicit-state enumeration cap; generated models are far below this.
_ENUM_LIMIT = 50_000

#: Mutation-oracle state cap: one full explicit model check per state per
#: property is the cost, so only small models run the Definition-3 pass.
MUTATION_STATE_CAP = 64


@dataclass(frozen=True)
class Disagreement:
    """One observed divergence between engine configurations.

    ``axis`` names the diverging configuration; ``field`` the first
    observable that differed; ``expected``/``actual`` its rendering under
    the reference engine and the axis engine respectively.
    """

    axis: str
    field: str
    expected: str
    actual: str

    def describe(self) -> str:
        return (
            f"axis {self.axis!r} disagrees on {self.field}:\n"
            f"  reference: {self.expected}\n"
            f"  {self.axis:>9}: {self.actual}"
        )


def comparable_result(analysis: Analysis, traces: int = 3) -> Dict:
    """Everything observable about one analysis, as a plain dict.

    Cost counters are stripped; verdicts, counterexample renderings, the
    coverage numbers, and the uncovered-trace text are kept.  Two engine
    configurations are *correct* exactly when this dict is equal.
    """
    result = analysis.result()
    data = result.to_json()
    for field in COST_FIELDS:
        data.pop(field, None)
    checks = analysis.verify()
    data["verdicts"] = [[str(r.formula), bool(r.holds)] for r in checks]
    data["counterexamples"] = [
        format_trace(analysis.fsm, r.counterexample)
        if r.counterexample is not None
        else None
        for r in checks
    ]
    if result.status == "ok":
        data["uncovered_trace_text"] = analysis.uncovered_traces(traces)
    return data


def _run_axis(text: str, name: str, config: EngineConfig) -> Dict:
    """One full pipeline run; model-level errors become a comparable value
    (both engines erroring identically is agreement, not a crash)."""
    try:
        return comparable_result(
            Analysis.from_rml(text, config=config, filename=name)
        )
    except ReproError as exc:
        return {"error": f"{type(exc).__name__}: {exc}"}


def _first_diff(reference: Dict, other: Dict) -> Tuple[str, str, str]:
    """The first (field, expected, actual) triple that differs."""
    for key in sorted(set(reference) | set(other)):
        lhs = reference.get(key, "<absent>")
        rhs = other.get(key, "<absent>")
        if lhs != rhs:
            return key, repr(lhs), repr(rhs)
    return "<none>", "<equal>", "<equal>"  # pragma: no cover - caller checks


def check_module(
    module: Module,
    text: Optional[str] = None,
    axes: Sequence[str] = DEFAULT_AXES,
    mutation_cap: int = MUTATION_STATE_CAP,
) -> Optional[Disagreement]:
    """Run the differential oracle on one module.

    Returns ``None`` when every requested axis agrees with the reference
    run (partitioned, default policy), or the first :class:`Disagreement`.
    Unknown axis names raise :class:`~repro.errors.ConfigError` via
    :func:`validate_axes`.
    """
    validate_axes(axes)
    if text is None:
        text = module_to_str(module)
    try:
        ref_analysis = Analysis.from_rml(
            text, config=EngineConfig(), filename=module.name
        )
        reference = comparable_result(ref_analysis)
    except ReproError as exc:
        # The generator guarantees well-formed modules, so a reference-run
        # failure is itself a finding (e.g. an engine mutation that breaks
        # the pipeline outright).
        return Disagreement(
            axis="reference",
            field="error",
            expected="a completed analysis",
            actual=f"{type(exc).__name__}: {exc}",
        )
    for axis in axes:
        if axis in AXIS_CONFIGS:
            got = _run_axis(text, module.name, AXIS_CONFIGS[axis])
            if got != reference:
                field, expected, actual = _first_diff(reference, got)
                return Disagreement(axis, field, expected, actual)
    if AXIS_ROUNDTRIP in axes:
        disagreement = _check_roundtrip(module, text)
        if disagreement is not None:
            return disagreement
    if AXIS_LINT in axes:
        disagreement = _check_lint(module, text)
        if disagreement is not None:
            return disagreement
    if AXIS_EXPLICIT in axes:
        disagreement = _check_explicit(
            module, ref_analysis, reference, mutation_cap
        )
        if disagreement is not None:
            return disagreement
    return None


def validate_axes(axes: Sequence[str]) -> Tuple[str, ...]:
    """Validate axis names (raises ``ConfigError`` listing valid ones)."""
    from ..errors import ConfigError

    valid = set(DEFAULT_AXES)
    unknown = [a for a in axes if a not in valid]
    if unknown:
        raise ConfigError(
            f"unknown oracle axis(es): {', '.join(unknown)} "
            f"(valid: {', '.join(DEFAULT_AXES)})"
        )
    if not axes:
        raise ConfigError("at least one oracle axis is required")
    return tuple(axes)


def _check_roundtrip(module: Module, text: str) -> Optional[Disagreement]:
    """print -> parse must be the identity on canonical modules."""
    try:
        reparsed = parse_module(text, filename=module.name)
    except ReproError as exc:
        return Disagreement(
            AXIS_ROUNDTRIP, "parse", "the module text parses",
            f"{type(exc).__name__}: {exc}",
        )
    if reparsed != module:
        return Disagreement(
            AXIS_ROUNDTRIP, "module", "parse(print(m)) == m",
            "re-parsed module differs structurally",
        )
    reprint = module_to_str(reparsed)
    if reprint != text:
        return Disagreement(
            AXIS_ROUNDTRIP, "text", "print(parse(t)) == t",
            "re-printed text differs",
        )
    return None


def _check_lint(module: Module, text: str) -> Optional[Disagreement]:
    """The static analyzer's three fuzz invariants (see module docs)."""
    from ..lint import lint_source

    try:
        report = lint_source(text, filename=module.name)
    except Exception as exc:  # lint must never raise, even on garbage
        return Disagreement(
            AXIS_LINT, "crash", "a lint report",
            f"{type(exc).__name__}: {exc}",
        )
    # The reference pipeline already elaborated this module successfully,
    # so every error-severity finding would be a false positive.
    errors = [d for d in report.diagnostics if d.severity.name == "ERROR"]
    if errors:
        return Disagreement(
            AXIS_LINT, "errors",
            "no error-severity findings on an elaborated model",
            "; ".join(d.format() for d in errors),
        )
    printed = module_to_str(module)
    try:
        reprinted = lint_source(printed, filename=module.name)
    except Exception as exc:
        return Disagreement(
            AXIS_LINT, "roundtrip-crash", "a lint report",
            f"{type(exc).__name__}: {exc}",
        )
    if report.codes() != reprinted.codes():
        return Disagreement(
            AXIS_LINT, "codes",
            repr(list(report.codes())),
            repr(list(reprinted.codes())),
        )
    return None


def _check_explicit(
    module: Module,
    analysis: Analysis,
    reference: Dict,
    mutation_cap: int,
) -> Optional[Disagreement]:
    """Explicit-state enumeration vs the symbolic reference run."""
    fsm = analysis.fsm
    model = enumerate_model(fsm, limit=_ENUM_LIMIT)
    fairness_exprs = [f.expr for f in module.fairness]
    checker = ExplicitModelChecker(model, fairness=fairness_exprs)

    # 1. Per-property verdicts.
    for check in analysis.verify():
        explicit_holds = checker.holds(check.formula)
        if explicit_holds != check.holds:
            return Disagreement(
                AXIS_EXPLICIT,
                f"verdict[{check.formula}]",
                str(bool(check.holds)),
                str(explicit_holds),
            )

    # 2. Reachable-state count (enumeration only visits reachable states).
    symbolic_reach = fsm.count_states(fsm.reachable())
    if symbolic_reach != model.n:
        return Disagreement(
            AXIS_EXPLICIT, "reachable_states",
            str(symbolic_reach), str(model.n),
        )

    # 3. Definition-3 mutation coverage, state by state, against the
    #    symbolic Table-1 recursion (the Correctness Theorem, checked on
    #    this very scenario).  Only on small, fairness-free, don't-care-free
    #    models: the oracle costs one model check per state per property.
    if (
        reference.get("status") == "ok"
        and not fairness_exprs
        and module.dont_care is None
        and model.n <= mutation_cap
    ):
        key_to_index = {
            tuple(
                bool(model.signal_values[i][v]) for v in fsm.state_vars
            ): i
            for i in range(model.n)
        }
        for check in analysis.verify():
            symbolic = analysis.estimator.covered_set(
                check.formula, analysis.observed
            )
            symbolic_indices = set()
            for state in fsm.iter_states(symbolic):
                key = tuple(bool(state[v]) for v in fsm.state_vars)
                index = key_to_index.get(key)
                if index is None:
                    return Disagreement(
                        AXIS_EXPLICIT,
                        f"covered[{check.formula}]",
                        "covered states are reachable",
                        f"unreachable covered state {fsm.format_state(state)}",
                    )
                symbolic_indices.add(index)
            mutated = mutation_covered(
                model, check.formula, analysis.observed
            )
            if symbolic_indices != mutated:
                return Disagreement(
                    AXIS_EXPLICIT,
                    f"covered[{check.formula}]",
                    f"symbolic covered set {sorted(symbolic_indices)}",
                    f"mutation covered set {sorted(mutated)}",
                )
    return None
