"""Seeded random-scenario generation: models, properties, graphs.

Every generator in this module is a pure function of a ``random.Random``
instance — the same seed always produces the same scenario, on any
platform, under any ``PYTHONHASHSEED`` (nothing here iterates a set or
hashes an object address).  That determinism is what makes a fuzz finding
a *seed line* rather than a lost artefact: ``repro fuzz`` records the
``(seed, index)`` pair, and re-running it regenerates the exact model.

Three layers:

* :func:`random_expr` / :func:`random_actl` / :func:`random_ctl` — random
  propositional expressions and CTL formulas over a given atom pool (the
  primitives the test suite's hypothesis strategies are built on);
* :func:`random_graph` — random explicit Kripke structures in the style of
  the paper's figures (the cross-validation tests' scenario source);
* :func:`random_module` / :func:`generate` — whole random ``.rml`` modules:
  latches, free inputs, a word register, ``case`` blocks with reset shapes,
  combinational defines, fairness, don't-cares, observed signals, and an
  ACTL property suite that is *guaranteed syntactically valid* over the
  module's signals (and biased toward properties that actually hold, so the
  coverage pipeline is exercised, not just the verdict path).

A generated module is always canonical: the raw AST is printed and
re-parsed once, so ``parse_module(gm.text) == gm.module`` holds by
construction and the differential oracle's round-trip axis checks the
printer/parser pair instead of the generator's whims.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, fields, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..ctl.ast import (
    AF,
    AG,
    AU,
    AX,
    EF,
    EG,
    EU,
    EX,
    Atom,
    CtlAnd,
    CtlFormula,
    CtlImplies,
    CtlNot,
    CtlOr,
    collapse,
)
from ..errors import ConfigError
from ..expr.ast import And, Const, Expr, Iff, Implies, Not, Or, Var, WordCmp, Xor
from ..fsm.explicit import ExplicitGraph
from ..lang.ast import (
    Case,
    CaseArm,
    DefineDecl,
    FairnessDecl,
    InitAssign,
    Module,
    NextAssign,
    SpecDecl,
    VarDecl,
    WordConst,
    WordOffset,
    WordRef,
)
from ..lang.parser import parse_module
from ..lang.printer import module_to_str

__all__ = [
    "GenParams",
    "GeneratedModel",
    "generate",
    "random_module",
    "random_expr",
    "random_actl",
    "random_ctl",
    "random_graph",
]


@dataclass(frozen=True)
class GenParams:
    """Knobs of the random-model generator — one frozen, picklable value.

    All counts are inclusive upper bounds; the generator draws the actual
    shape per model.  The defaults keep models small enough for the
    explicit-state oracle (worst case a few hundred states) while still
    covering every language feature: word registers with ripple-carry
    increments (these exercise ``apply_xor``), ``case`` blocks with reset
    arms, combinational defines, fairness, and don't-cares.
    """

    max_bool_latches: int = 3
    max_inputs: int = 2
    p_word: float = 0.75
    min_word_width: int = 2
    max_word_width: int = 3
    max_defines: int = 2
    max_specs: int = 3
    atom_depth: int = 2
    spec_depth: int = 2
    p_case: float = 0.5
    p_reset_input: float = 0.35
    p_fairness: float = 0.15
    p_dontcare: float = 0.15
    p_failing_spec: float = 0.25

    def __post_init__(self) -> None:
        if self.max_bool_latches < 1:
            raise ConfigError("max_bool_latches must be >= 1")
        if self.max_inputs < 0:
            raise ConfigError("max_inputs must be >= 0")
        if not 1 <= self.min_word_width <= self.max_word_width:
            raise ConfigError(
                "word widths must satisfy 1 <= min_word_width <= max_word_width"
            )
        if self.max_specs < 1:
            raise ConfigError("max_specs must be >= 1")
        if self.atom_depth < 0 or self.spec_depth < 0:
            raise ConfigError("depths must be >= 0")
        for name in ("p_word", "p_case", "p_reset_input", "p_fairness",
                     "p_dontcare", "p_failing_spec"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigError(f"{name} must be a probability in [0, 1]")

    def with_(self, **changes) -> "GenParams":
        """A copy with the given fields replaced."""
        return replace(self, **changes)

    def to_json(self) -> Dict:
        """JSON-safe dict with every knob explicit (for fuzz reports)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_json(cls, data: Dict) -> "GenParams":
        """Inverse of :meth:`to_json`; unknown keys raise ``ConfigError``."""
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConfigError(
                f"unknown generator param(s): {', '.join(unknown)}"
            )
        return cls(**data)


#: The default parameter set (used when the CLI passes none).
DEFAULT_PARAMS = GenParams()


# ----------------------------------------------------------------------
# Expression / formula generation
# ----------------------------------------------------------------------


def random_expr(rng: random.Random, atoms: Sequence[Expr], depth: int) -> Expr:
    """A random propositional expression over the given atom pool.

    ``atoms`` are used verbatim as leaves; internal nodes draw from the
    full connective set (including ``^`` so the BDD ``apply_xor`` path is
    exercised by generated logic).
    """
    if not atoms:
        raise ConfigError("random_expr needs a non-empty atom pool")
    if depth <= 0 or rng.random() < 0.3:
        return rng.choice(list(atoms))
    shape = rng.randrange(6)
    if shape == 0:
        return Not(random_expr(rng, atoms, depth - 1))
    lhs = random_expr(rng, atoms, depth - 1)
    rhs = random_expr(rng, atoms, depth - 1)
    if shape == 1:
        return And((lhs, rhs))
    if shape == 2:
        return Or((lhs, rhs))
    if shape == 3:
        return Xor(lhs, rhs)
    if shape == 4:
        return Iff(lhs, rhs)
    return Implies(lhs, rhs)


def random_actl(
    rng: random.Random, atoms: Sequence[Expr], depth: int
) -> CtlFormula:
    """A random member of the paper's acceptable ACTL subset.

    Shapes mirror the grammar ``f ::= b | b -> f | AX f | AG f | AF f |
    A[f U g] | f & g``, so every result passes
    :func:`~repro.ctl.actl.normalize_for_coverage`.
    """
    if not atoms:
        raise ConfigError("random_actl needs a non-empty atom pool")
    if depth <= 0:
        return Atom(rng.choice(list(atoms)))
    sub = lambda: random_actl(rng, atoms, depth - 1)  # noqa: E731
    shape = rng.randrange(7)
    if shape == 0:
        return Atom(rng.choice(list(atoms)))
    if shape == 1:
        return CtlImplies(Atom(rng.choice(list(atoms))), sub())
    if shape == 2:
        return AX(sub())
    if shape == 3:
        return AG(sub())
    if shape == 4:
        return AF(sub())
    if shape == 5:
        return AU(sub(), sub())
    return CtlAnd((sub(), sub()))


def random_ctl(
    rng: random.Random, atoms: Sequence[Expr], depth: int
) -> CtlFormula:
    """A random formula of the *full* CTL (both path quantifiers).

    The cross-validation tests use this to compare the symbolic checker
    against the explicit oracle on operators outside the coverage subset.
    """
    if not atoms:
        raise ConfigError("random_ctl needs a non-empty atom pool")
    if depth <= 0:
        return Atom(rng.choice(list(atoms)))
    sub = lambda: random_ctl(rng, atoms, depth - 1)  # noqa: E731
    shape = rng.randrange(13)
    if shape == 0:
        return Atom(rng.choice(list(atoms)))
    if shape == 1:
        return CtlNot(sub())
    if shape == 2:
        return CtlAnd((sub(), sub()))
    if shape == 3:
        return CtlOr((sub(), sub()))
    if shape == 4:
        return CtlImplies(sub(), sub())
    if shape == 5:
        return AX(sub())
    if shape == 6:
        return AG(sub())
    if shape == 7:
        return AF(sub())
    if shape == 8:
        return AU(sub(), sub())
    if shape == 9:
        return EX(sub())
    if shape == 10:
        return EG(sub())
    if shape == 11:
        return EF(sub())
    return EU(sub(), sub())


def random_graph(
    rng: random.Random,
    max_states: int = 5,
    labels: Sequence[str] = ("p", "q"),
) -> ExplicitGraph:
    """A random explicit Kripke structure (total relation, >= 1 initial).

    The shape matches what the property-based cross-validation tests used
    to build inline: 2..``max_states`` states, 1-3 successors each, label
    subsets drawn per state.
    """
    n = rng.randint(2, max_states)
    label_sets = [
        [lab for lab in labels if rng.random() < 0.5] for _ in range(n)
    ]
    initial = rng.sample(range(n), rng.randint(1, min(2, n)))
    graph = ExplicitGraph("random", signals=list(labels))
    for i in range(n):
        graph.state(f"s{i}", labels=label_sets[i], initial=(i in initial))
    for i in range(n):
        targets = sorted(
            {rng.randrange(n) for _ in range(rng.randint(1, 3))}
        )
        for j in targets:
            graph.edge(f"s{i}", f"s{j}")
    return graph


# ----------------------------------------------------------------------
# Module generation
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class GeneratedModel:
    """One generated scenario: canonical module AST + its ``.rml`` text.

    ``module`` is always exactly ``parse_module(text)`` — the generator
    prints its raw AST and re-parses once, so the pair is in the parser's
    canonical form and a reproducer file round-trips losslessly.
    """

    seed_key: str
    params: GenParams
    module: Module
    text: str

    def analysis(self, config=None):
        """A fresh :class:`~repro.analysis.Analysis` over the module text
        (the same construction path the CLI's ``run`` subcommand uses)."""
        from ..analysis import Analysis

        return Analysis.from_rml(
            self.text, config=config, filename=self.module.name
        )


def generate(seed_key, params: Optional[GenParams] = None) -> GeneratedModel:
    """Generate the scenario for ``seed_key`` (any int or string).

    The key is stringified before seeding so ``generate(7)`` and
    ``generate("7")`` coincide and fuzz case keys like ``"0:17"`` work
    directly.
    """
    params = params if params is not None else DEFAULT_PARAMS
    rng = random.Random(str(seed_key))
    name = "fuzz_" + "".join(
        ch if ch.isalnum() else "_" for ch in str(seed_key)
    )
    module = random_module(rng, params, name=name)
    text = module_to_str(module)
    return GeneratedModel(
        seed_key=str(seed_key), params=params, module=module, text=text
    )


def _word_atoms(rng: random.Random, word: str, width: int) -> List[Expr]:
    """Comparison atoms over a word register, constants kept in range."""
    top = (1 << width) - 1
    return [
        WordCmp("==", word, rng.randint(0, top)),
        WordCmp("<", word, rng.randint(1, top)),
        WordCmp(">=", word, rng.randint(0, top)),
        WordCmp("!=", word, rng.randint(0, top)),
    ]


def random_module(
    rng: random.Random,
    params: Optional[GenParams] = None,
    name: str = "fuzz",
) -> Module:
    """A random, well-formed ``.rml`` module (canonical AST).

    Guarantees: at least one latch, at least one ``OBSERVED`` signal, at
    least one ``SPEC`` from the acceptable ACTL subset over declared
    signals — i.e. the module elaborates and analyses without errors.
    The property suite is verified during generation (on the module's own
    FSM) and biased toward holding properties so most scenarios exercise
    the full coverage/trace pipeline; with probability
    ``params.p_failing_spec`` one failing property is kept to exercise the
    verdict path.
    """
    params = params if params is not None else DEFAULT_PARAMS

    n_bool = rng.randint(1, params.max_bool_latches)
    n_inputs = rng.randint(0, params.max_inputs)
    has_word = rng.random() < params.p_word
    width = rng.randint(params.min_word_width, params.max_word_width)
    has_reset = rng.random() < params.p_reset_input

    inputs = [f"in{i}" for i in range(n_inputs)]
    if has_reset:
        inputs.append("reset")
    bools = [f"b{i}" for i in range(n_bool)]
    word = "w0" if has_word else None

    decls: List[VarDecl] = [VarDecl(nm) for nm in inputs]
    decls += [VarDecl(nm) for nm in bools]
    if word:
        decls.append(VarDecl(word, width=width))

    # Atom pool over current-state signals (defines join below).
    atoms: List[Expr] = [Var(nm) for nm in inputs + bools]
    if word:
        atoms.extend(_word_atoms(rng, word, width))
    if not atoms:  # no inputs, no word: bools is non-empty, unreachable
        atoms = [Var(bools[0])]  # pragma: no cover - defensive

    defines: List[DefineDecl] = []
    for i in range(rng.randint(0, params.max_defines)):
        defines.append(
            DefineDecl(f"d{i}", random_expr(rng, atoms, params.atom_depth))
        )
        atoms.append(Var(f"d{i}"))

    inits: List[InitAssign] = []
    nexts: List[NextAssign] = []
    for latch in bools:
        inits.append(InitAssign(latch, rng.randint(0, 1)))
        nexts.append(NextAssign(latch, _bool_next(rng, params, atoms)))
    if word:
        inits.append(InitAssign(word, rng.randint(0, (1 << width) - 1)))
        nexts.append(NextAssign(word, _word_next(rng, params, atoms, word, width)))

    fairness: Tuple[FairnessDecl, ...] = ()
    if rng.random() < params.p_fairness:
        fairness = (FairnessDecl(random_expr(rng, atoms, 1)),)

    dont_care: Optional[Expr] = None
    if rng.random() < params.p_dontcare:
        dont_care = random_expr(rng, atoms, 1)

    observable = bools + ([word] if word else []) + [d.name for d in defines]
    observed = tuple(
        sorted(rng.sample(observable, rng.randint(1, min(2, len(observable)))))
    )

    base = Module(
        name=name,
        vars=tuple(decls),
        inits=tuple(inits),
        nexts=tuple(nexts),
        defines=tuple(defines),
        fairness=fairness,
        observed=observed,
        dont_care=dont_care,
    )
    specs = _select_specs(rng, params, base, atoms)
    raw = replace(base, specs=tuple(SpecDecl(f) for f in specs))
    # Canonicalise: the parser's output (collapsed formulas, flattened
    # n-ary connectives) is the fixpoint of print -> parse, which is what
    # the oracle's round-trip axis and the shrinker both rely on.
    return parse_module(module_to_str(raw), filename=name)


def _bool_next(rng: random.Random, params: GenParams, atoms: List[Expr]) -> object:
    """Next-state logic for a boolean latch: plain expression or case."""
    if rng.random() >= params.p_case:
        return random_expr(rng, atoms, params.atom_depth)
    arms: List[CaseArm] = []
    if "reset" in {a.name for a in atoms if isinstance(a, Var)}:
        arms.append(CaseArm(Var("reset"), Const(False)))
    for _ in range(rng.randint(0, 1)):
        arms.append(
            CaseArm(random_expr(rng, atoms, 1), random_expr(rng, atoms, 1))
        )
    arms.append(CaseArm(Const(True), random_expr(rng, atoms, params.atom_depth)))
    return Case(tuple(arms))


def _word_next(
    rng: random.Random,
    params: GenParams,
    atoms: List[Expr],
    word: str,
    width: int,
) -> object:
    """Next-state logic for the word register.

    Always a ``case`` with a wrap arm and an increment/decrement default —
    the ripple-carry lowering of ``w0 + 1`` is the module's dose of
    ``Xor``-heavy logic, mirroring the paper's counter shape.
    """
    top = (1 << width) - 1
    wrap_at = rng.randint(1, top)
    step = WordOffset(word, rng.choice([1, 1, -1]))
    arms: List[CaseArm] = []
    if "reset" in {a.name for a in atoms if isinstance(a, Var)}:
        arms.append(CaseArm(Var("reset"), WordConst(0)))
    hold_or_clear = rng.choice(
        [WordRef(word), WordConst(0), WordConst(rng.randint(0, top))]
    )
    arms.append(
        CaseArm(WordCmp("==", word, wrap_at), hold_or_clear)
    )
    if rng.random() < 0.5:
        arms.append(CaseArm(random_expr(rng, atoms, 1), WordRef(word)))
    arms.append(CaseArm(Const(True), step))
    return Case(tuple(arms))


def _select_specs(
    rng: random.Random,
    params: GenParams,
    base: Module,
    atoms: List[Expr],
) -> List[CtlFormula]:
    """Generate candidate ACTL properties and pick a suite, verified.

    Candidates are model checked on the module's own FSM so most kept
    properties hold (exercising coverage estimation and trace extraction
    downstream); occasionally a failing property is kept deliberately.
    Falls back to unverified candidates if the module cannot be model
    checked — generation must never crash on its own output.
    """
    from ..lang.elaborate import elaborate
    from ..mc.checker import ModelChecker

    candidates = [
        collapse(random_actl(rng, atoms, params.spec_depth))
        for _ in range(3 * params.max_specs)
    ]
    n_specs = rng.randint(1, params.max_specs)
    keep_failing = rng.random() < params.p_failing_spec
    try:
        model = elaborate(base)
        checker = ModelChecker(model.fsm)
        verdicts = [checker.holds(f) for f in candidates]
    except Exception:  # pragma: no cover - generator self-consistency
        return candidates[:n_specs]
    holding = [f for f, ok in zip(candidates, verdicts) if ok]
    failing = [f for f, ok in zip(candidates, verdicts) if not ok]
    specs = holding[:n_specs]
    if not specs:
        specs = candidates[:1]
    elif failing and keep_failing:
        # Swap one holding property for a failing one, never exceeding
        # the drawn suite size.
        specs = specs[: n_specs - 1] + [failing[0]]
    return specs
