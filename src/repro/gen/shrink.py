"""Greedy module shrinking: minimise a disagreeing scenario.

When the differential oracle finds a divergence, the generated module is
rarely the smallest witness.  :func:`shrink_module` applies a classic
greedy delta-debugging loop: propose structurally smaller candidate
modules, keep the first candidate that (a) still parses and elaborates and
(b) still satisfies the caller's interestingness predicate (for the
fuzzer: *still disagrees on the same axis*), and repeat until no candidate
helps.  Candidates must strictly shrink the printed text, so the loop
terminates unconditionally.

Reduction passes, largest wins first:

* drop a ``SPEC`` (keeping at least one), a ``FAIRNESS`` constraint, the
  ``DONTCARE``, or an unreferenced ``DEFINE``;
* drop an unreferenced variable together with its assignments;
* narrow the ``OBSERVED`` list to one signal;
* peel a temporal property to a subformula (``AG f`` -> ``f``,
  ``A[f U g]`` -> ``g``, ``b -> f`` -> ``f``, ``f & g`` -> each side);
* collapse a ``case`` block to its default arm, or drop a middle arm;
* replace next-state logic with trivial forms (hold / constant);
* narrow the word register by one bit.

Everything is deterministic — no randomness, no set iteration — so a
shrunken reproducer is a function of the original module alone.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Iterator, Optional, Set, Union

from ..ctl.ast import AF, AG, AU, AX, Atom, CtlAnd, CtlFormula, CtlImplies, formula_atoms
from ..errors import ReproError
from ..expr.ast import Const, Expr
from ..lang.ast import (
    Case,
    InitAssign,
    Module,
    NextAssign,
    SpecDecl,
    VarDecl,
    WordConst,
    WordExpr,
    WordRef,
)
from ..lang.elaborate import elaborate
from ..lang.parser import parse_module
from ..lang.printer import module_to_str

__all__ = ["shrink_module", "latch_bits"]

#: Interestingness predicate: candidate module + its canonical text.
Interesting = Callable[[Module, str], bool]


def shrink_module(
    module: Module,
    interesting: Interesting,
    max_steps: int = 500,
) -> Module:
    """Greedily minimise ``module`` while ``interesting`` stays true.

    ``interesting`` receives each *canonical* candidate (re-parsed from
    its printed text) and must be deterministic.  The original module is
    returned unchanged if no reduction applies; callers should ensure
    ``interesting(module, module_to_str(module))`` holds on entry.
    """
    current = module
    current_text = module_to_str(module)
    for _ in range(max_steps):
        for candidate in _candidates(current):
            text = module_to_str(candidate)
            if len(text) >= len(current_text):
                continue
            try:
                canonical = parse_module(text, filename=module.name)
                elaborate(canonical)
            except ReproError:
                continue
            if interesting(canonical, text):
                current, current_text = canonical, text
                break
        else:
            return current
    return current


# ----------------------------------------------------------------------
# Candidate generation
# ----------------------------------------------------------------------


def _names_used(module: Module, skip_var: Optional[str] = None) -> Set[str]:
    """Every signal name referenced anywhere except ``skip_var``'s own
    declaration/assignments — used to decide whether a variable or define
    can be dropped without dangling references."""
    used: Set[str] = set()

    def add_expr(expr: Optional[Expr]) -> None:
        if expr is not None:
            used.update(expr.atoms())

    def add_value(value: Union[Expr, WordExpr, Case]) -> None:
        if isinstance(value, Case):
            for arm in value.arms:
                add_expr(arm.condition)
                add_value(arm.value)
        elif isinstance(value, Expr):
            add_expr(value)
        elif isinstance(value, WordExpr):
            for attr in ("name", "lhs", "rhs"):
                name = getattr(value, attr, None)
                if isinstance(name, str):
                    used.add(name)

    for nxt in module.nexts:
        if nxt.target != skip_var:
            add_value(nxt.value)
    for define in module.defines:
        add_value(define.value)
    for fairness in module.fairness:
        add_expr(fairness.expr)
    for spec in module.specs:
        used.update(formula_atoms(spec.formula))
    add_expr(module.dont_care)
    used.update(module.observed)
    # Word bits appear in lowered atoms under their bit names (w00, ...).
    for var in module.vars:
        if var.is_word and any(
            f"{var.name}{i}" in used for i in range(var.width or 0)
        ):
            used.add(var.name)
    return used


def _without_index(items, index):
    return tuple(v for i, v in enumerate(items) if i != index)


def _candidates(module: Module) -> Iterator[Module]:
    """Structurally smaller variants, in decreasing expected payoff."""
    # Drop a whole variable (latch or input) that nothing else references.
    for i, var in enumerate(module.vars):
        if var.name in _names_used(module, skip_var=var.name):
            continue
        yield replace(
            module,
            vars=_without_index(module.vars, i),
            inits=tuple(a for a in module.inits if a.target != var.name),
            nexts=tuple(a for a in module.nexts if a.target != var.name),
        )

    # Drop one SPEC (at least one must remain).
    if len(module.specs) > 1:
        for i in range(len(module.specs)):
            yield replace(module, specs=_without_index(module.specs, i))

    # Drop fairness constraints and the don't-care.
    for i in range(len(module.fairness)):
        yield replace(module, fairness=_without_index(module.fairness, i))
    if module.dont_care is not None:
        yield replace(module, dont_care=None)

    # Drop an unreferenced DEFINE.
    for i, define in enumerate(module.defines):
        if define.name in _names_used(module, skip_var=define.name):
            continue
        yield replace(module, defines=_without_index(module.defines, i))

    # Narrow OBSERVED to a single signal.
    if len(module.observed) > 1:
        for name in module.observed:
            yield replace(module, observed=(name,))

    # Peel temporal structure off each SPEC.
    for i, spec in enumerate(module.specs):
        for smaller in _formula_reductions(spec.formula):
            yield replace(
                module,
                specs=module.specs[:i]
                + (SpecDecl(smaller),)
                + module.specs[i + 1:],
            )

    # Simplify next-state logic.
    for i, nxt in enumerate(module.nexts):
        var = module.var(nxt.target)
        for smaller in _next_reductions(nxt, is_word=bool(var and var.is_word)):
            yield replace(
                module,
                nexts=module.nexts[:i] + (smaller,) + module.nexts[i + 1:],
            )

    # Narrow the word register by one bit (init clipped to the new range;
    # out-of-range constants elsewhere are rejected by the validity check).
    for i, var in enumerate(module.vars):
        if not var.is_word or (var.width or 0) <= 1:
            continue
        new_width = (var.width or 2) - 1
        new_vars = (
            module.vars[:i]
            + (VarDecl(var.name, width=new_width),)
            + module.vars[i + 1:]
        )
        new_inits = tuple(
            InitAssign(a.target, a.value % (1 << new_width))
            if a.target == var.name
            else a
            for a in module.inits
        )
        yield replace(module, vars=new_vars, inits=new_inits)


def _formula_reductions(formula: CtlFormula) -> Iterator[CtlFormula]:
    """Strictly smaller formulas that keep the acceptable-subset shape."""
    if isinstance(formula, (AG, AX, AF)):
        yield formula.operand
    elif isinstance(formula, AU):
        yield formula.rhs
        yield formula.lhs
    elif isinstance(formula, CtlImplies):
        yield formula.rhs
    elif isinstance(formula, CtlAnd):
        for arg in formula.args:
            yield arg
    elif isinstance(formula, Atom):
        if formula.expr != Const(True):
            yield Atom(Const(True))


def _next_reductions(nxt: NextAssign, is_word: bool) -> Iterator[NextAssign]:
    """Smaller next-state right-hand sides for one assignment."""
    value = nxt.value
    if isinstance(value, Case):
        # The default arm alone, then each case with one middle arm gone.
        yield NextAssign(nxt.target, value.arms[-1].value)
        if len(value.arms) > 1:
            for i in range(len(value.arms) - 1):
                yield NextAssign(
                    nxt.target, Case(_without_index(value.arms, i))
                )
    if is_word:
        if not isinstance(value, WordConst):
            yield NextAssign(nxt.target, WordConst(0))
        if not isinstance(value, WordRef):
            yield NextAssign(nxt.target, WordRef(nxt.target))
    else:
        if value != Const(False):
            yield NextAssign(nxt.target, Const(False))
        if value != Const(True):
            yield NextAssign(nxt.target, Const(True))


def latch_bits(module: Module) -> int:
    """Number of latch *bits* the module elaborates to (words count per
    bit) — the size metric the fuzz harness reports for reproducers."""
    bits = 0
    assigned = {a.target for a in module.nexts}
    for var in module.vars:
        if var.name in assigned:
            bits += var.width or 1
    return bits
