"""The fuzz campaign driver: budgets, process fan-out, reports, corpus.

:func:`run_fuzz` runs ``budget`` differential-oracle cases — each one a
freshly generated scenario keyed by ``"<seed>:<index>"`` — optionally
across work-stealing process shards (cases are embarrassingly parallel:
every case builds its own BDD managers, exactly like suite jobs; the
fan-out is :func:`repro.suite.shards.run_sharded`, so a crashed worker
costs only its shard's cases, not the campaign).  Disagreements are
greedily shrunk (:mod:`repro.gen.shrink`) in the parent process and
written as self-describing ``.rml`` reproducers into the regression
corpus directory, where the suite registry's ``.rml`` discovery picks
them up forever after.

The machine-readable outcome is a ``repro-fuzz/v1`` JSON document; its
``seed``/``index`` pairs are the reproduction handles::

    python -m repro fuzz --budget 1 --seed <seed> --offset <index>

re-runs exactly the disagreeing case.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from .._version import __version__
from ..lang.printer import module_to_str
from .model import DEFAULT_PARAMS, GenParams, generate
from .oracle import DEFAULT_AXES, Disagreement, check_module, validate_axes
from .shrink import latch_bits, shrink_module

__all__ = [
    "FUZZ_SCHEMA_ID",
    "FuzzFinding",
    "FuzzResult",
    "run_fuzz",
    "case_key",
    "write_fuzz_report",
]

#: Schema identifier of the JSON report :meth:`FuzzResult.to_json` emits.
FUZZ_SCHEMA_ID = "repro-fuzz/v1"


def case_key(seed: int, index: int) -> str:
    """The generator seed key of case ``index`` in a ``--seed seed`` run."""
    return f"{seed}:{index}"


@dataclass
class FuzzFinding:
    """One disagreement, with its shrunken reproducer."""

    seed: int
    index: int
    axis: str
    field: str
    expected: str
    actual: str
    text: str
    shrunk_text: str
    shrunk_latches: int
    reproducer_path: Optional[str] = None

    def seed_line(self) -> str:
        """The CLI invocation that regenerates exactly this case."""
        return (
            f"python -m repro fuzz --budget 1 "
            f"--seed {self.seed} --offset {self.index}"
        )

    def to_json(self) -> Dict:
        return {
            "seed": self.seed,
            "index": self.index,
            "seed_key": case_key(self.seed, self.index),
            "seed_line": self.seed_line(),
            "axis": self.axis,
            "field": self.field,
            "expected": self.expected,
            "actual": self.actual,
            "text": self.text,
            "shrunk_latches": self.shrunk_latches,
            "shrunk_text": self.shrunk_text,
            "reproducer_path": self.reproducer_path,
        }


@dataclass
class FuzzResult:
    """Outcome of one fuzz campaign (JSON-ready)."""

    seed: int
    budget: int
    offset: int
    axes: Tuple[str, ...]
    params: GenParams
    cases: int = 0
    errors: List[Dict] = field(default_factory=list)
    findings: List[FuzzFinding] = field(default_factory=list)
    seconds: float = 0.0

    @property
    def ok(self) -> bool:
        """Whether every case agreed on every axis (and none crashed)."""
        return not self.findings and not self.errors

    def to_json(self) -> Dict:
        return {
            "schema": FUZZ_SCHEMA_ID,
            "generator": f"repro {__version__}",
            "seed": self.seed,
            "budget": self.budget,
            "offset": self.offset,
            "axes": list(self.axes),
            "params": self.params.to_json(),
            "totals": {
                "cases": self.cases,
                "agreed": self.cases - len(self.findings) - len(self.errors),
                "disagreed": len(self.findings),
                "errors": len(self.errors),
                "seconds": round(self.seconds, 6),
            },
            "errors": list(self.errors),
            "findings": [f.to_json() for f in self.findings],
        }

    def format_summary(self) -> str:
        """Human-readable campaign summary."""
        lines = [
            f"fuzz: {self.cases} case(s), seed {self.seed}, "
            f"axes {','.join(self.axes)}: "
            f"{len(self.findings)} disagreement(s), "
            f"{len(self.errors)} error(s) in {self.seconds:.2f}s"
        ]
        for finding in self.findings:
            lines.append(
                f"  DISAGREE case {case_key(self.seed, finding.index)} "
                f"axis={finding.axis} field={finding.field} "
                f"({finding.shrunk_latches} latch bit(s) after shrink)"
            )
            lines.append(f"    reproduce: {finding.seed_line()}")
            if finding.reproducer_path:
                lines.append(f"    reproducer: {finding.reproducer_path}")
        for error in self.errors:
            lines.append(
                f"  ERROR case {error['seed_key']}: {error['error']}"
            )
        return "\n".join(lines)


def _run_one(args: Tuple[int, int, GenParams, Tuple[str, ...]]) -> Dict:
    """Worker body: generate one case, run the oracle, return primitives.

    Exceptions are captured as an ``error`` entry — a crash in one case
    must not take down the campaign (or its worker pool).
    """
    seed, index, params, axes = args
    key = case_key(seed, index)
    try:
        gm = generate(key, params)
        disagreement = check_module(gm.module, text=gm.text, axes=axes)
    except Exception as exc:  # noqa: BLE001 - campaign must survive
        return {
            "index": index,
            "status": "error",
            "seed_key": key,
            "error": f"{type(exc).__name__}: {exc}",
        }
    if disagreement is None:
        return {"index": index, "status": "agree", "seed_key": key}
    return {
        "index": index,
        "status": "disagree",
        "seed_key": key,
        "axis": disagreement.axis,
        "field": disagreement.field,
        "expected": disagreement.expected,
        "actual": disagreement.actual,
    }


def _shard_error_case(item, message: str) -> Dict:
    """The error entry for a case whose worker crashed before reporting
    — same shape as ``_run_one``'s own exception capture, so the report
    keeps its seed-line reproduction handle."""
    seed, index, _params, _axes = item
    return {
        "index": index,
        "status": "error",
        "seed_key": case_key(seed, index),
        "error": message,
    }


def run_fuzz(
    budget: int,
    seed: int = 0,
    offset: int = 0,
    axes: Sequence[str] = DEFAULT_AXES,
    params: Optional[GenParams] = None,
    jobs: int = 1,
    shrink: bool = True,
    corpus_dir: "str | Path | None" = None,
) -> FuzzResult:
    """Run a differential fuzz campaign of ``budget`` cases.

    Cases ``offset .. offset+budget-1`` under base ``seed`` are generated
    and cross-checked; with ``jobs > 1`` they fan out over a process pool
    (one BDD universe per process, same machinery as the suite runner).
    Disagreements are shrunk in the parent — the shrinker re-runs the
    oracle in-process, so any engine monkey-patching active in the parent
    (the harness self-test) stays in effect — and written to
    ``corpus_dir`` as reproducer ``.rml`` files when a directory is given.
    """
    axes = validate_axes(tuple(axes))
    params = params if params is not None else DEFAULT_PARAMS
    started = time.perf_counter()
    work = [(seed, i, params, axes) for i in range(offset, offset + budget)]
    if jobs <= 1 or budget <= 1:
        raw = [_run_one(item) for item in work]
    else:
        # Shard the seed space over the work-stealing executor: cases
        # are pulled by idle workers (no fixed-chunk head-of-line
        # blocking), completed verdicts are captured shard by shard, and
        # a crashed worker — exactly the bug class fuzzing hunts —
        # converts only its shard's cases to error entries instead of
        # aborting the campaign and losing every finished verdict.
        from ..suite.shards import run_sharded

        raw, _stats = run_sharded(
            work,
            _run_one,
            _shard_error_case,
            max_workers=min(jobs, budget),
            counter_prefix="fuzz.shards",
        )

    result = FuzzResult(
        seed=seed, budget=budget, offset=offset, axes=axes, params=params,
        cases=len(raw),
    )
    for case in raw:
        if case["status"] == "agree":
            continue
        if case["status"] == "error":
            result.errors.append(
                {"seed_key": case["seed_key"], "error": case["error"]}
            )
            continue
        result.findings.append(
            _build_finding(seed, case, params, axes, shrink, corpus_dir)
        )
    result.seconds = time.perf_counter() - started
    return result


def _build_finding(
    seed: int,
    case: Dict,
    params: GenParams,
    axes: Tuple[str, ...],
    shrink: bool,
    corpus_dir: "str | Path | None",
) -> FuzzFinding:
    """Regenerate, shrink, and (optionally) persist one disagreement.

    The shrink phase re-runs the (possibly broken) engine in this process,
    so any exception — including non-ReproError crashes, exactly the bug
    class fuzzing hunts — must degrade to "keep the unshrunk witness", not
    abort the campaign and lose the report.
    """
    index = case["index"]
    disagreement = Disagreement(
        axis=case["axis"], field=case["field"],
        expected=case["expected"], actual=case["actual"],
    )
    try:
        gm = generate(case_key(seed, index), params)
        module, text = gm.module, gm.text
    except Exception as exc:  # noqa: BLE001 - campaign must survive
        return FuzzFinding(
            seed=seed, index=index,
            axis=disagreement.axis, field=disagreement.field,
            expected=disagreement.expected, actual=disagreement.actual,
            text=f"<regeneration failed: {type(exc).__name__}: {exc}>",
            shrunk_text="", shrunk_latches=0,
        )
    shrunk_module, shrunk_text = module, text
    if shrink:
        axis = disagreement.axis
        # Probe only the disagreeing axis (the reference run is always
        # included); a "reference" failure needs any one axis, so pick the
        # cheapest.  This keeps shrinking ~|axes| times cheaper than
        # re-running the full oracle per candidate.
        probe_axes = (axis,) if axis in axes else ("roundtrip",)

        def still_disagrees(candidate, candidate_text) -> bool:
            try:
                found = check_module(
                    candidate, text=candidate_text, axes=probe_axes
                )
            except Exception:  # noqa: BLE001 - reject crashing candidates
                return False
            return found is not None and found.axis == axis

        try:
            shrunk_module = shrink_module(module, still_disagrees)
            shrunk_text = module_to_str(shrunk_module)
            if shrunk_module is not module:
                # Describe the *shrunken* witness: its first differing
                # field is what the reproducer actually demonstrates.
                final = check_module(
                    shrunk_module, text=shrunk_text, axes=probe_axes
                )
                if final is not None:
                    disagreement = final
        except Exception:  # noqa: BLE001 - keep the unshrunk witness
            shrunk_module, shrunk_text = module, text
    finding = FuzzFinding(
        seed=seed,
        index=index,
        axis=disagreement.axis,
        field=disagreement.field,
        expected=disagreement.expected,
        actual=disagreement.actual,
        text=text,
        shrunk_text=shrunk_text,
        shrunk_latches=latch_bits(shrunk_module),
    )
    if corpus_dir is not None:
        finding.reproducer_path = str(
            _write_reproducer(Path(corpus_dir), finding)
        )
    return finding


def _write_reproducer(corpus_dir: Path, finding: FuzzFinding) -> Path:
    """Persist a shrunken reproducer as a self-describing ``.rml`` file."""
    corpus_dir.mkdir(parents=True, exist_ok=True)
    path = corpus_dir / f"fuzz-{finding.seed}-{finding.index}.rml"
    header = (
        f"-- repro fuzz reproducer (shrunken, "
        f"{finding.shrunk_latches} latch bit(s))\n"
        f"-- axis: {finding.axis}   field: {finding.field}\n"
        f"-- reproduce the original case: {finding.seed_line()}\n"
    )
    path.write_text(header + finding.shrunk_text)
    return path


def write_fuzz_report(result: FuzzResult, path: "str | Path") -> None:
    """Serialise :meth:`FuzzResult.to_json` as indented JSON."""
    Path(path).write_text(json.dumps(result.to_json(), indent=2) + "\n")
