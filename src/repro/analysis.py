"""`Analysis` — the one front door to the paper's pipeline.

The paper's workflow is a single conceptual pipeline: build a model, verify
its properties, estimate coverage of the verified suite (Table 1), report
Table-2 style results.  This module is that pipeline as one object.  The
CLI's three subcommands, the suite runner's workers, and the benchmarks all
construct an :class:`Analysis` and drive the same methods — there is no
second code path to drift out of sync.

    >>> from repro.analysis import Analysis
    >>> a = Analysis.builtin("counter", stage="partial")
    >>> a.holds()
    True
    >>> round(a.coverage().percentage, 2)
    80.0

Constructors
------------
:meth:`Analysis.builtin`
    A registered paper circuit at a property stage (``counter``,
    ``queue-wrap`` ...), built inside this process.
:meth:`Analysis.from_rml`
    A ``.rml`` model file (path) or module text, parsed and elaborated.
:meth:`Analysis.from_fsm`
    An already-built FSM with explicit properties/observed signals — the
    hook for hand-constructed circuits and benchmarks.
:meth:`Analysis.from_job`
    A picklable :class:`~repro.suite.jobs.CoverageJob` description — what
    suite worker processes rebuild on their side of the fork.

Every constructor takes an :class:`~repro.engine.EngineConfig`; the config
travels into the FSM build (transition mode, resource policy) and back out
on the :class:`AnalysisResult`, so a recorded result always documents the
configuration that produced it.

The verification and estimation state (one shared
:class:`~repro.mc.ModelChecker`, one :class:`~repro.coverage.CoverageEstimator`)
is owned by the facade and created lazily; coverage estimation reuses the
checker's memoised satisfaction sets exactly as the paper's implementation
reused fixpoints from verification.
"""

from __future__ import annotations

from dataclasses import InitVar, dataclass, field, fields
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from .coverage import CoverageEstimator, CoverageReport, format_uncovered_traces
from .ctl.ast import CtlFormula
from .engine import EngineConfig, _warn_deprecated
from .errors import ModelError, ReportError, VerificationError
from .fsm.fsm import FSM
from .mc import CheckResult, ModelChecker, WorkMeter, WorkStats
from .obs.telemetry import Telemetry

__all__ = ["Analysis", "AnalysisResult"]

#: Analysis kinds (mirrored by the suite's job kinds).
KIND_BUILTIN = "builtin"
KIND_RML = "rml"
KIND_CUSTOM = "custom"


@dataclass
class AnalysisResult:
    """JSON-safe outcome of one analysis — primitives only, so it survives
    both pickling back from a worker process and JSON serialisation.

    This absorbs the former ``repro.suite.JobResult`` (which remains as an
    alias): the per-job objects of the ``repro-coverage-suite/v2`` report
    are exactly ``AnalysisResult.to_json()`` documents, now including the
    :class:`~repro.engine.EngineConfig` the analysis ran under.

    ``status`` is ``"ok"`` (verified, coverage estimated), ``"fail"``
    (at least one property failed model checking — coverage undefined), or
    ``"error"`` (the analysis raised: parse error, bad observed signal, ...).
    """

    name: str
    kind: str
    status: str
    model: Optional[str] = None
    stage: Optional[str] = None
    path: Optional[str] = None
    config: EngineConfig = field(default_factory=EngineConfig)
    observed: List[str] = field(default_factory=list)
    properties: int = 0
    percentage: Optional[float] = None
    covered_states: Optional[int] = None
    space_states: Optional[int] = None
    uncovered_states: Optional[int] = None
    failing_properties: List[str] = field(default_factory=list)
    error: Optional[str] = None
    seconds: float = 0.0
    nodes_created: int = 0
    #: Garbage collections the BDD manager ran during the analysis.
    gc_runs: int = 0
    #: Wall-clock seconds spent inside those collections (GC overhead).
    gc_seconds: float = 0.0
    #: Node slots those collections recycled.
    gc_freed: int = 0
    #: Automatic reordering passes completed during the analysis.
    reorder_runs: int = 0
    #: Combined operation-cache entry count when the analysis ended.
    cache_entries: int = 0
    #: The manager's live-node high-water mark — the analysis' memory bound.
    peak_live_nodes: int = 0
    #: Telemetry emission (``repro-metrics/v1``): cumulative engine
    #: counters, plus phase spans/events at level ``"spans"``.  ``None``
    #: when telemetry is off — the JSON block is strictly additive.
    metrics: Optional[Dict] = None
    #: Static-analysis findings (``repro-lint/v1`` document) for analyses
    #: built from a module AST.  ``None`` for builtin/custom analyses —
    #: the JSON block is strictly additive, like ``metrics``.
    lint: Optional[Dict] = None
    #: Deprecated constructor keyword (the former flat ``JobResult.trans``
    #: field); folds into ``config`` with a warning.  Not a field.
    trans: InitVar[Optional[str]] = None

    def __post_init__(self, trans: Optional[str]) -> None:
        if trans is not None:
            _warn_deprecated(
                "AnalysisResult(trans=...) is deprecated; pass "
                "config=EngineConfig(trans=...) instead",
                stacklevel=3,
            )
            self.config = self.config.with_(trans=trans)

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_json(self) -> Dict:
        """The per-job object of the suite JSON report (schema v2).

        The ``metrics`` key is additive: present only when the analysis
        ran with telemetry on, so v2 consumers are unaffected by default.
        """
        payload = {
            "name": self.name,
            "kind": self.kind,
            "status": self.status,
            "model": self.model,
            "stage": self.stage,
            "path": self.path,
            "config": self.config.to_json(),
            "observed": list(self.observed),
            "properties": self.properties,
            "percentage": self.percentage,
            "covered_states": self.covered_states,
            "space_states": self.space_states,
            "uncovered_states": self.uncovered_states,
            "failing_properties": list(self.failing_properties),
            "error": self.error,
            "seconds": round(self.seconds, 6),
            "nodes_created": self.nodes_created,
            "gc_runs": self.gc_runs,
            "gc_seconds": round(self.gc_seconds, 6),
            "gc_freed": self.gc_freed,
            "reorder_runs": self.reorder_runs,
            "cache_entries": self.cache_entries,
            "peak_live_nodes": self.peak_live_nodes,
        }
        if self.metrics is not None:
            payload["metrics"] = self.metrics
        if self.lint is not None:
            payload["lint"] = self.lint
        return payload

    @classmethod
    def from_json(cls, data: Dict) -> "AnalysisResult":
        """Revive a result from its :meth:`to_json` document — the
        decoding half of the wire format ``repro serve`` responses and
        suite report jobs share.

        Validating: unknown fields and missing identity fields raise
        :class:`~repro.errors.ReportError` (a misspelled key should fail
        loudly, not decode to a default).  Round-trips exactly::

            >>> r = AnalysisResult(name="demo", kind="builtin", status="ok")
            >>> AnalysisResult.from_json(r.to_json()) == r
            True
        """
        if not isinstance(data, dict):
            raise ReportError(
                f"AnalysisResult JSON must be an object, "
                f"got {type(data).__name__}"
            )
        payload = dict(data)
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ReportError(
                f"AnalysisResult JSON has unknown field(s): "
                f"{', '.join(unknown)}"
            )
        missing = [k for k in ("name", "kind", "status") if k not in payload]
        if missing:
            raise ReportError(
                f"AnalysisResult JSON lacks required field(s): "
                f"{', '.join(missing)}"
            )
        if "config" in payload:
            payload["config"] = EngineConfig.from_json(payload["config"])
        return cls(**payload)

    def format_line(self) -> str:
        """One human-readable summary line."""
        if self.status == "ok":
            detail = (
                f"{self.percentage:6.2f}%  "
                f"({self.covered_states}/{self.space_states} states, "
                f"{self.properties} properties, {self.seconds:.2f}s)"
            )
        elif self.status == "fail":
            detail = (
                f"FAIL    ({len(self.failing_properties)} of "
                f"{self.properties} properties fail verification)"
            )
        else:
            detail = f"ERROR   ({self.error})"
        return f"{self.name:24s} {detail}"


def _deprecated_result_trans(self) -> str:
    """Deprecated: read ``result.config.trans`` instead."""
    _warn_deprecated(
        "AnalysisResult.trans is deprecated; read result.config.trans",
        stacklevel=3,
    )
    return self.config.trans


#: Attached post-decoration: inside the class body the property object
#: would be mistaken for the ``trans`` InitVar's default.
AnalysisResult.trans = property(_deprecated_result_trans)


def _looks_like_path(source: Union[str, Path]) -> bool:
    """Whether ``from_rml``'s argument names a file rather than module text.

    Any :class:`~pathlib.Path`, and any newline-free string, is a path —
    real module text always spans lines, and treating a newline-free
    string as text would turn a mistyped file name into a baffling parse
    error instead of the honest ``FileNotFoundError``.
    """
    return isinstance(source, Path) or "\n" not in source


class Analysis:
    """One model + one property suite + one engine configuration.

    Construct via :meth:`builtin` / :meth:`from_rml` / :meth:`from_fsm` /
    :meth:`from_job`, then call:

    * :meth:`verify` — model-check every property (cached), returning the
      full :class:`~repro.mc.CheckResult` list (counterexamples included);
    * :meth:`coverage` — the :class:`~repro.coverage.CoverageReport` of the
      verified suite (raises :class:`~repro.errors.VerificationError` if
      any property fails — the paper's Definition 3 only covers satisfied
      properties);
    * :meth:`uncovered_traces` — rendered traces into the coverage holes;
    * :meth:`result` — the whole pipeline as one JSON-safe
      :class:`AnalysisResult`, work-metered, never raising for model-level
      failures (``status`` carries them instead).
    """

    def __init__(
        self,
        fsm: FSM,
        properties: Sequence[CtlFormula],
        observed: Union[str, Sequence[str]],
        dont_care=None,
        *,
        config: Optional[EngineConfig] = None,
        name: Optional[str] = None,
        kind: str = KIND_CUSTOM,
        stage: Optional[str] = None,
        path: Optional[str] = None,
        telemetry: Optional[Telemetry] = None,
    ):
        self.fsm = fsm
        self.properties: List[CtlFormula] = list(properties)
        self.observed: List[str] = (
            [observed] if isinstance(observed, str) else list(observed)
        )
        self.dont_care = dont_care
        self.config = config if config is not None else EngineConfig()
        self.name = name if name is not None else fsm.name
        self.kind = kind
        self.stage = stage
        self.path = path
        #: The run's telemetry recorder (``NULL_TELEMETRY`` when the
        #: config's level is "off").  Constructors that record pre-build
        #: phases (parse, elaborate) pass theirs in; otherwise one is
        #: created from the config.  The FSM reports through it too.
        self.telemetry = (
            telemetry
            if telemetry is not None
            else Telemetry.from_level(self.config.telemetry)
        )
        self.telemetry.attach(fsm.manager)
        self.fsm.telemetry = self.telemetry
        #: The parsed module AST for rml-built analyses (set by
        #: ``_from_module``); ``None`` for builtin/custom circuits, which
        #: have no source to lint.
        self.module = None
        #: The original ``.rml`` source text when construction had it —
        #: improves lint anchors and enables waiver pragmas.
        self.source_text: Optional[str] = None
        self._lint_report = None
        self._checker: Optional[ModelChecker] = None
        self._estimator: Optional[CoverageEstimator] = None
        self._check_results: Optional[List[CheckResult]] = None
        self._report: Optional[CoverageReport] = None
        #: Work accumulated across the pipeline phases, metered where the
        #: computation actually happens — result() reports the same
        #: numbers whether or not verify()/coverage() ran first.
        self._stats = WorkStats()

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def builtin(
        cls,
        target: str,
        stage: Optional[str] = None,
        buggy: bool = False,
        config: Optional[EngineConfig] = None,
    ) -> "Analysis":
        """A registered paper circuit (see ``repro.suite.BUILTIN_TARGETS``).

        Raises :class:`ValueError` for an unknown target or a stage outside
        the target's stage list.
        """
        from .suite.registry import build_builtin

        config = config if config is not None else EngineConfig()
        telemetry = Telemetry.from_level(config.telemetry)
        with telemetry.span("build", target=target):
            fsm, props, observed, dont_care = build_builtin(
                target, stage=stage, buggy=buggy, config=config
            )
            # Attach before the span closes so the build phase's counter
            # delta captures the circuit construction (start = fresh
            # manager = all-zero).
            telemetry.attach(fsm.manager)
        suffix = f"@{stage}" if stage else ""
        return cls(
            fsm, props, observed, dont_care,
            config=config, name=f"{target}{suffix}", kind=KIND_BUILTIN,
            stage=stage, telemetry=telemetry,
        )

    @classmethod
    def from_rml(
        cls,
        source: Union[str, Path],
        config: Optional[EngineConfig] = None,
        *,
        filename: Optional[str] = None,
    ) -> "Analysis":
        """A ``.rml`` model, from a file path, module text, or a parsed
        :class:`~repro.lang.ast.Module`.

        A :class:`~pathlib.Path`, or any newline-free string, is read
        from disk; a string containing newlines is parsed as module text
        (``filename`` labels its error messages).  An already-parsed
        module skips the parse entirely — the reuse hook for callers
        that parsed once for other reasons (the analysis server parses
        for request-key computation, then builds from the same AST).
        The module must declare ``OBSERVED`` signals and at least one
        ``SPEC`` (raises :class:`~repro.errors.ModelError` otherwise —
        an analysis without them has no defined coverage).

        Raises :class:`OSError` for unreadable paths and
        :class:`~repro.errors.ParseError` (with source location) for
        invalid module text.
        """
        from .lang import load_module, parse_module
        from .lang.ast import Module

        config = config if config is not None else EngineConfig()
        telemetry = Telemetry.from_level(config.telemetry)
        if isinstance(source, Module):
            return cls._from_module(
                source, config, path=None, filename=filename,
                telemetry=telemetry,
            )
        with telemetry.span("parse"):
            if _looks_like_path(source):
                path: Optional[str] = str(source)
                text: Optional[str] = None
                module = load_module(source)
            else:
                path = None
                text = str(source)
                module = parse_module(text, filename=filename)
        return cls._from_module(
            module, config, path=path, filename=filename,
            telemetry=telemetry, source_text=text,
        )

    @classmethod
    def _from_module(
        cls,
        module,
        config: EngineConfig,
        path: Optional[str],
        filename: Optional[str] = None,
        telemetry: Optional[Telemetry] = None,
        source_text: Optional[str] = None,
    ) -> "Analysis":
        """Elaborate and validate a parsed module — the one rml
        construction path (``from_rml`` and suite workers both land
        here, so their error messages cannot drift apart)."""
        from .lang import elaborate

        if telemetry is None:
            telemetry = Telemetry.from_level(config.telemetry)
        with telemetry.span("elaborate"):
            model = elaborate(module, config=config)
            # Attach before the span closes: the fresh manager's counters
            # start at zero, so the delta is the whole elaboration cost.
            telemetry.attach(model.fsm.manager)
        where = path or filename or model.module.name
        if not model.observed:
            raise ModelError(
                f"{where}: module {model.module.name!r} declares no "
                f"OBSERVED signals (add e.g. 'OBSERVED <signal>;')"
            )
        if not model.specs:
            raise ModelError(
                f"{where}: module {model.module.name!r} declares no "
                f"SPEC properties"
            )
        stem = Path(path).stem if path else model.module.name
        analysis = cls(
            model.fsm, model.specs, model.observed, model.dont_care,
            config=config, name=f"rml:{stem}", kind=KIND_RML, path=path,
            telemetry=telemetry,
        )
        analysis.module = module
        analysis.source_text = source_text
        return analysis

    @classmethod
    def from_fsm(
        cls,
        fsm: FSM,
        properties: Sequence[CtlFormula],
        observed: Union[str, Sequence[str]],
        dont_care=None,
        *,
        name: Optional[str] = None,
        config: Optional[EngineConfig] = None,
    ) -> "Analysis":
        """Wrap an already-built FSM (hand-constructed circuits,
        benchmarks).  The FSM's engine knobs were fixed when it was built;
        ``config`` here only documents them on the result."""
        return cls(
            fsm, properties, observed, dont_care, config=config, name=name,
            kind=KIND_CUSTOM,
        )

    @classmethod
    def from_job(cls, job, module=None) -> "Analysis":
        """Rebuild a :class:`~repro.suite.jobs.CoverageJob` description —
        the worker-process side of suite fan-out.

        ``module`` short-circuits the parse for rml jobs when the caller
        already holds the job source's parsed AST (the analysis server's
        inline workers reuse the module parsed for key computation); the
        job's source text still travels along for lint anchors.
        """
        from .lang import parse_module
        from .suite.jobs import KIND_BUILTIN as JOB_BUILTIN
        from .suite.jobs import KIND_RML as JOB_RML

        if job.kind == JOB_BUILTIN:
            if job.target is None:
                raise ValueError(f"builtin job {job.name!r} has no target")
            analysis = cls.builtin(
                job.target, stage=job.stage, buggy=job.buggy,
                config=job.config,
            )
        elif job.kind == JOB_RML:
            if job.source is None:
                raise ValueError(f"rml job {job.name!r} has no source")
            if module is None:
                module = parse_module(job.source, filename=job.path)
            analysis = cls._from_module(
                module, job.config, path=job.path, source_text=job.source
            )
        else:
            raise ValueError(f"unknown job kind {job.kind!r}")
        analysis.name = job.name
        analysis.stage = job.stage
        return analysis

    # ------------------------------------------------------------------
    # Shared verification / estimation state
    # ------------------------------------------------------------------

    @property
    def checker(self) -> ModelChecker:
        """The shared model checker (memoised satisfaction sets)."""
        if self._checker is None:
            self._checker = ModelChecker(self.fsm)
        return self._checker

    @property
    def estimator(self) -> CoverageEstimator:
        """The coverage estimator, bound to the shared checker so
        estimation reuses verification fixpoints."""
        if self._estimator is None:
            self._estimator = CoverageEstimator(self.fsm, checker=self.checker)
        return self._estimator

    # ------------------------------------------------------------------
    # Pipeline
    # ------------------------------------------------------------------

    def verify(self) -> List[CheckResult]:
        """Model-check every property (cached); failing results carry
        counterexample traces where one can be derived."""
        if self._check_results is None:
            with WorkMeter(self.fsm.manager) as meter:
                self._check_results = [
                    self.checker.check(p) for p in self.properties
                ]
            self._stats = self._stats + meter.stats
        return self._check_results

    def failing(self) -> List[CheckResult]:
        """The verification failures (empty when the suite holds)."""
        return [r for r in self.verify() if not r.holds]

    def holds(self) -> bool:
        """Whether every property holds on the model."""
        return not self.failing()

    def coverage(self) -> CoverageReport:
        """Estimate coverage of the (verified) suite; cached.

        Raises :class:`~repro.errors.VerificationError` when any property
        fails — the paper defines covered sets only for satisfied
        properties.
        """
        if self._report is None:
            failing = self.failing()
            if failing:
                raise VerificationError(
                    f"{len(failing)} propert(ies) fail on "
                    f"{self.fsm.name!r}; coverage is only defined for "
                    f"verified properties"
                )
            with WorkMeter(self.fsm.manager) as meter:
                self._report = self.estimator.estimate(
                    self.properties, observed=self.observed,
                    dont_care=self.dont_care,
                )
            self._stats = self._stats + meter.stats
        return self._report

    def uncovered_traces(self, count: int = 3) -> str:
        """Rendered traces from an initial state to up to ``count``
        uncovered states (see :func:`repro.coverage.trace_to_uncovered`)."""
        report = self.coverage()
        with self.telemetry.span("traces", count=count):
            return format_uncovered_traces(report, count=count)

    def lint(self):
        """Static-analysis findings for the module this analysis was
        built from, as a :class:`~repro.lint.LintReport` (memoised).

        Engine-free: runs entirely over the parsed AST, never touching
        the BDD layer.  Analyses without a module AST (builtin circuits,
        hand-built FSMs) return an empty report over zero files.
        """
        from .lint import LintReport, lint_module

        if self._lint_report is None:
            if self.module is None:
                self._lint_report = LintReport(files=[])
            else:
                text = self.source_text
                if text is None and self.path is not None:
                    try:
                        text = Path(self.path).read_text()
                    except OSError:
                        text = None
                self._lint_report = lint_module(
                    self.module, text=text,
                    filename=self.path or self.module.filename,
                )
        return self._lint_report

    def result(self, include_lint: bool = True) -> AnalysisResult:
        """Run the whole pipeline and return its JSON-safe outcome.

        Verification failures become ``status="fail"`` (with the failing
        property list) rather than an exception.  The cost counters
        (nodes created, GC activity, live-node peak, seconds) cover
        verification plus estimation and are accumulated where the work
        is computed, so they are correct even when ``verify()`` or
        ``coverage()`` already ran on this instance.

        ``include_lint=False`` omits the lint block: analysis server
        workers use it because lint anchors to raw source text, which
        the content-addressed cache deliberately normalises away — the
        server computes lint per request and merges it back in.
        """
        failing = self.failing()
        report = None if failing else self.coverage()
        stats = self._stats
        common = dict(
            name=self.name,
            kind=self.kind,
            model=self.fsm.name,
            stage=self.stage,
            path=self.path,
            config=self.config,
            observed=list(self.observed),
            seconds=stats.seconds,
            nodes_created=stats.nodes_created,
            gc_runs=stats.gc_runs,
            gc_seconds=stats.gc_seconds,
            gc_freed=stats.gc_freed,
            reorder_runs=stats.reorder_runs,
            cache_entries=stats.cache_entries,
            peak_live_nodes=stats.peak_live_nodes,
            metrics=(
                self.telemetry.metrics() if self.telemetry.enabled else None
            ),
            lint=(
                self.lint().to_json()
                if include_lint and self.module is not None
                else None
            ),
        )
        if failing:
            return AnalysisResult(
                status="fail",
                properties=len(self.properties),
                failing_properties=[str(r.formula) for r in failing],
                **common,
            )
        return AnalysisResult(
            status="ok",
            properties=len(report.per_property),
            percentage=report.percentage,
            covered_states=report.covered_count,
            space_states=report.space_count,
            uncovered_states=report.space_count - report.covered_count,
            **common,
        )
