"""Coverage-as-a-service: the ``repro serve`` analysis server.

The paper's coverage estimate is a pure function of (model, property
suite, engine config) — so identical requests deserve one computation,
not many.  This package keeps an analysis service resident: a
content-addressed result cache (:mod:`~repro.serve.cache`) keyed by the
``repro-key/v1`` scheme (:mod:`~repro.serve.keys`), a warm recycling
worker pool (:mod:`~repro.serve.workers`), a hand-rolled asyncio HTTP
server (:mod:`~repro.serve.server`), and a tiny blocking client
(:mod:`~repro.serve.client`) that ``repro-coverage run/suite --server``
speak through.  See ``docs/serving.md`` for the protocol and
operational story.
"""

from .cache import ResultCache, default_cache_dir
from .client import ServeClient
from .keys import KEY_SCHEME, canonical_rml, model_key, request_key
from .server import SERVE_SCHEMA, AnalysisServer, ServeOptions, run_server
from .workers import WorkerPool, analyze_payload, job_from_payload, payload_from_job

__all__ = [
    "KEY_SCHEME",
    "SERVE_SCHEMA",
    "AnalysisServer",
    "ResultCache",
    "ServeClient",
    "ServeOptions",
    "WorkerPool",
    "analyze_payload",
    "canonical_rml",
    "default_cache_dir",
    "job_from_payload",
    "model_key",
    "payload_from_job",
    "request_key",
    "run_server",
]
