"""A tiny blocking client for the analysis server.

Wraps ``http.client`` (stdlib, no dependencies) around the three
``repro-serve/v1`` routes.  One connection per request — the server
answers ``Connection: close``, and a fresh connection per call makes the
client trivially thread-safe, which is all the suite's thin-client
fan-out needs.

Transport failures and non-2xx answers both raise
:class:`~repro.errors.ServeError`; the exception carries the HTTP status
(``0`` for transport-level failures) and the server's structured error
payload when one came back, so callers can show "line 3, column 7"
for a 422 parse error instead of a bare status code.
"""

from __future__ import annotations

import json
from http.client import HTTPConnection, HTTPException
from typing import Dict, Optional
from urllib.parse import urlsplit

from ..analysis import AnalysisResult
from ..engine import EngineConfig
from ..errors import ServeError
from .workers import payload_from_job

__all__ = ["ServeClient"]


class ServeClient:
    """Blocking HTTP client for one ``repro serve`` base URL."""

    def __init__(self, url: str, timeout: float = 300.0):
        parts = urlsplit(url if "//" in url else f"http://{url}")
        if parts.scheme not in ("http", ""):
            raise ServeError(
                f"unsupported server URL scheme {parts.scheme!r} "
                f"(only http is spoken)"
            )
        if not parts.hostname:
            raise ServeError(f"server URL {url!r} names no host")
        self.host = parts.hostname
        self.port = parts.port if parts.port is not None else 80
        self.timeout = timeout

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------

    def health(self) -> Dict:
        """``GET /v1/health`` — raises :class:`~repro.errors.ServeError`
        if the server is unreachable or unhealthy."""
        return self._request("GET", "/v1/health")

    def stats(self) -> Dict:
        """``GET /v1/stats`` — the server's ``repro-metrics/v1`` counters."""
        return self._request("GET", "/v1/stats")

    def analyze(self, payload: Dict) -> Dict:
        """``POST /v1/analyze`` with a raw payload; returns the full
        response envelope (``key``/``cached``/``result``)."""
        return self._request("POST", "/v1/analyze", body=payload)

    # ------------------------------------------------------------------
    # Conveniences
    # ------------------------------------------------------------------

    def analyze_job(self, job) -> AnalysisResult:
        """Analyze a :class:`~repro.suite.jobs.CoverageJob` remotely,
        returning the revived :class:`~repro.analysis.AnalysisResult` —
        the suite runner's thin-client primitive."""
        envelope = self.analyze(payload_from_job(job))
        return AnalysisResult.from_json(envelope["result"])

    def analyze_rml(
        self,
        source: str,
        config: Optional[EngineConfig] = None,
        *,
        path: Optional[str] = None,
        name: Optional[str] = None,
    ) -> Dict:
        """Analyze ``.rml`` module text; returns the response envelope."""
        payload: Dict = {"rml": source}
        if path is not None:
            payload["path"] = path
        if name is not None:
            payload["name"] = name
        if config is not None:
            payload["config"] = config.to_json()
        return self.analyze(payload)

    def analyze_builtin(
        self,
        target: str,
        stage: Optional[str] = None,
        buggy: bool = False,
        config: Optional[EngineConfig] = None,
    ) -> Dict:
        """Analyze a builtin circuit; returns the response envelope."""
        payload: Dict = {"target": target}
        if stage is not None:
            payload["stage"] = stage
        if buggy:
            payload["buggy"] = True
        if config is not None:
            payload["config"] = config.to_json()
        return self.analyze(payload)

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------

    def _request(
        self, method: str, route: str, body: Optional[Dict] = None
    ) -> Dict:
        connection = HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            encoded = (
                json.dumps(body).encode("utf-8") if body is not None else None
            )
            connection.request(
                method,
                route,
                body=encoded,
                headers={"Content-Type": "application/json"}
                if encoded is not None
                else {},
            )
            response = connection.getresponse()
            raw = response.read()
            status = response.status
        except (OSError, HTTPException) as exc:
            raise ServeError(
                f"analysis server at {self.url} unreachable: {exc}"
            ) from exc
        finally:
            connection.close()
        try:
            document = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ServeError(
                f"{method} {route}: server answered {status} with "
                f"non-JSON body",
                status=status,
            ) from exc
        if status != 200:
            error = (
                document.get("error", {}) if isinstance(document, dict) else {}
            )
            message = error.get("message", f"HTTP {status}")
            raise ServeError(
                f"{method} {route}: {message}",
                status=status,
                payload=document if isinstance(document, dict) else None,
            )
        return document
