"""Warm analysis workers: payload codec + recycling process pool.

The server ships work to analysis workers as plain JSON-safe *payloads*
(the picklable mirror of a :class:`~repro.suite.jobs.CoverageJob`), and
each worker answers with ``AnalysisResult.to_json()`` primitives — BDD
handles never cross a process boundary, exactly the suite runner's
fan-out contract.

Two execution modes behind one :class:`WorkerPool` interface:

``workers >= 1`` (production)
    A ``ProcessPoolExecutor``.  Workers stay warm between jobs (imports,
    code caches) and every job builds its model in a fresh per-job BDD
    manager bounded by the request config's
    :class:`~repro.bdd.policy.ResourcePolicy`, so worker memory returns
    to baseline after each job.  As a hedge against slow interpreter
    bloat the pool additionally *recycles* itself — a fresh executor
    replaces the old one after ``recycle_after`` jobs per worker; the old
    pool drains its in-flight jobs and exits.

``workers == 0`` (inline)
    A single-threaded ``ThreadPoolExecutor`` running analyses in the
    server process.  This is the mode for tests and tiny deployments; it
    also enables the parse-reuse path — the module the server already
    parsed for key computation is handed straight to
    :meth:`~repro.analysis.Analysis.from_job`, so a deduplicated burst of
    identical requests parses its model exactly once.

Worker crashes (a killed child, an OOM) surface as
``BrokenProcessPool`` on the in-flight futures; the server maps that to
one HTTP 500 and calls :meth:`WorkerPool.reset_after_crash`, which
replaces the broken executor so the next request finds a healthy pool.
"""

from __future__ import annotations

import os
import signal
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Dict

from ..engine import EngineConfig
from ..errors import ConfigError
from ..suite.jobs import KIND_BUILTIN, KIND_RML, CoverageJob

__all__ = [
    "BrokenProcessPool",
    "WorkerPool",
    "analyze_payload",
    "job_from_payload",
    "payload_from_job",
]

#: Jobs each worker handles before the pool recycles (times ``workers``).
DEFAULT_RECYCLE_AFTER = 64

#: Payload kind that makes a worker die on purpose (exercises the crash →
#: 500 → respawn path).  Only honoured when the server was started with
#: test hooks enabled.
KIND_CRASH = "__crash__"


def payload_from_job(job: CoverageJob) -> Dict:
    """The JSON-safe wire form of a job — what ``POST /v1/analyze`` takes.

    ``rml`` jobs ship their source text; ``builtin`` jobs ship the target
    coordinates.  The engine config travels as its JSON codec.
    """
    payload: Dict = {"name": job.name, "config": job.config.to_json()}
    if job.kind == KIND_RML:
        payload["rml"] = job.source
        if job.path is not None:
            payload["path"] = job.path
    elif job.kind == KIND_BUILTIN:
        payload["target"] = job.target
        if job.stage is not None:
            payload["stage"] = job.stage
        if job.buggy:
            payload["buggy"] = True
    else:
        raise ValueError(f"unknown job kind {job.kind!r}")
    return payload


def job_from_payload(payload: Dict) -> CoverageJob:
    """Rebuild the :class:`~repro.suite.jobs.CoverageJob` a payload
    describes.  Raises :class:`ValueError` for a malformed payload and
    :class:`~repro.errors.ConfigError` for a bad config."""
    if not isinstance(payload, dict):
        raise ValueError("analyze payload must be a JSON object")
    has_rml = "rml" in payload
    has_target = "target" in payload
    if has_rml == has_target:
        raise ValueError(
            "analyze payload takes exactly one of 'rml' (model text) and "
            "'target' (builtin circuit name)"
        )
    config_data = payload.get("config", {})
    config = EngineConfig.from_json(config_data if config_data else {})
    name = payload.get("name")
    if name is not None and not isinstance(name, str):
        raise ValueError("'name' must be a string")
    if has_rml:
        source = payload["rml"]
        if not isinstance(source, str):
            raise ValueError("'rml' must be a string of module text")
        path = payload.get("path")
        if path is not None and not isinstance(path, str):
            raise ValueError("'path' must be a string")
        from pathlib import Path

        if name is None:
            name = f"rml:{Path(path).stem}" if path else "rml:<text>"
        return CoverageJob(
            name=name, kind=KIND_RML, path=path, source=source, config=config
        )
    target = payload["target"]
    if not isinstance(target, str):
        raise ValueError("'target' must be a builtin circuit name")
    stage = payload.get("stage")
    if stage is not None and not isinstance(stage, str):
        raise ValueError("'stage' must be a string")
    buggy = bool(payload.get("buggy", False))
    if name is None:
        name = f"{target}@{stage}" if stage else target
    return CoverageJob(
        name=name, kind=KIND_BUILTIN, target=target, stage=stage,
        buggy=buggy, config=config,
    )


def _worker_init() -> None:
    """Reset inherited signal state in a freshly forked worker.

    The server parent registers asyncio signal handlers, which install a
    ``signal.set_wakeup_fd`` self-pipe.  A forked worker inherits both —
    so a signal delivered to a *worker* (e.g. the pool manager thread
    SIGTERM-ing survivors after a sibling crash) would be written into
    the pipe the parent's event loop reads, and the server would shut
    itself down.  Workers therefore detach from the wakeup fd, take the
    default SIGTERM disposition, and ignore SIGINT (terminal Ctrl-C goes
    to the whole process group; shutdown is the parent's decision).
    """
    signal.set_wakeup_fd(-1)
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    signal.signal(signal.SIGINT, signal.SIG_IGN)


def analyze_payload(payload: Dict, module=None) -> Dict:
    """Run one payload to completion — the worker-side entry point.

    Returns ``AnalysisResult.to_json()`` primitives.  Model-level
    failures become ``status="fail"``/``"error"`` results (the suite
    runner's never-raise contract); only infrastructure faults raise.

    ``module`` is the parse-reuse hook: an already-parsed
    :class:`~repro.lang.Module` for ``rml`` payloads (inline mode hands
    over the module the server parsed for the request key).

    Lint is deliberately *excluded* here: findings anchor to the raw
    source text (lines, columns, waiver comments), which the cache's
    reprint-normalised key treats as noise.  The server computes lint
    per request from the raw text and merges it into the response, so
    comment-only edits share one cached engine result yet still see
    their own lint — never a stale anchor.
    """
    if payload.get("kind") == KIND_CRASH:  # test hook; see KIND_CRASH
        os._exit(13)
    from ..suite.runner import execute_job

    job = job_from_payload(payload)
    return execute_job(job, module=module, include_lint=False).to_json()


class WorkerPool:
    """The server's executor: warm processes, or an inline thread."""

    def __init__(
        self,
        workers: int = 2,
        recycle_after: int = DEFAULT_RECYCLE_AFTER,
    ):
        if workers < 0:
            raise ConfigError("--workers must be >= 0 (0 runs inline)")
        if recycle_after < 1:
            raise ConfigError("--recycle-after must be >= 1")
        self.workers = workers
        self.recycle_after = recycle_after
        self.inline = workers == 0
        self._jobs = 0
        self._jobs_at_spawn = 0
        self._recycles = 0
        self._crashes = 0
        self._executor = self._spawn()

    def _spawn(self):
        if self.inline:
            return ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="repro-serve-inline"
            )
        return ProcessPoolExecutor(
            max_workers=self.workers, initializer=_worker_init
        )

    # ------------------------------------------------------------------
    # Job flow
    # ------------------------------------------------------------------

    def submit(self, payload: Dict, module=None) -> Future:
        """Schedule ``payload``; the future resolves to result JSON.

        Recycling happens here, between jobs: once the current executor
        has taken ``recycle_after * max(workers, 1)`` jobs, a fresh one
        replaces it and the old pool drains and exits in the background.
        """
        if not self.inline:
            quota = self.recycle_after * self.workers
            if self._jobs - self._jobs_at_spawn >= quota:
                self._recycle()
            # Parsed modules stay server-side: a process worker re-parses
            # from source, which is as cheap as unpickling the AST.
            module = None
        self._jobs += 1
        try:
            return self._executor.submit(analyze_payload, payload, module)
        except BrokenProcessPool:
            # Pool already broken (an earlier crash): heal, then retry on
            # the fresh executor.
            self.reset_after_crash()
            return self._executor.submit(analyze_payload, payload, module)

    def _recycle(self) -> None:
        old = self._executor
        self._executor = self._spawn()
        self._jobs_at_spawn = self._jobs
        self._recycles += 1
        old.shutdown(wait=False)

    def reset_after_crash(self) -> None:
        """Replace a broken executor after a worker died mid-job."""
        self._crashes += 1
        old = self._executor
        self._executor = self._spawn()
        self._jobs_at_spawn = self._jobs
        old.shutdown(wait=False)

    # ------------------------------------------------------------------
    # Lifecycle / stats
    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        return {
            "workers": self.workers,
            "inline": int(self.inline),
            "jobs": self._jobs,
            "recycles": self._recycles,
            "crashes": self._crashes,
        }

    def shutdown(self, wait: bool = True) -> None:
        self._executor.shutdown(wait=wait)
