"""Content-addressed request keys — the ``repro-key/v1`` scheme.

The paper's coverage metric is a pure function of (model, property suite,
engine config): two requests that agree on those three produce
byte-identical :class:`~repro.analysis.AnalysisResult` JSON.  This module
turns that triple into one stable hex digest the cache and the in-flight
deduplicator index by.

Scheme ``repro-key/v1``
-----------------------
The digest is ``sha256`` over a newline-joined header block::

    repro-key/v1
    kind=<rml|builtin>
    model=<model identity, see below>
    select=<property selection>
    config=<EngineConfig.fingerprint()>

* ``rml`` models identify as ``sha256`` of their *reprinted* source: the
  text is parsed and printed back through the canonical printer
  (:func:`repro.lang.module_to_str`), so whitespace, comments, and other
  concrete-syntax noise never split the cache, while any semantic edit
  (a renamed variable, a changed assignment, an added SPEC) lands on a
  different key.  ``select`` is ``-`` — an ``.rml`` file carries its own
  property suite.
* ``builtin`` targets identify by name; ``select`` carries the property
  stage and the ``buggy`` variant flag.
* ``config`` is the engine config's canonical JSON fingerprint
  (:meth:`repro.engine.EngineConfig.fingerprint`), every field explicit,
  so new engine knobs join the key automatically.

Like the lint code catalogue, the scheme is **append-only**: any change
to how a component is serialised (a new printer normalisation, a new
header line) must bump the leading version tag so old cache entries can
never be misread as answers to new keys.  Entry-level invalidation on
engine upgrades is the cache's job (see :mod:`repro.serve.cache`), not
the key's.

    >>> from repro.engine import EngineConfig
    >>> a = model_key("MODULE m VAR x : boolean;\\nASSIGN next(x) := !x;\\n"
    ...               "SPEC AG (x | !x); OBSERVED x;")
    >>> b = model_key("MODULE m  -- comment\\n  VAR x : boolean;\\n\\n"
    ...               "ASSIGN next(x) := !x;\\nSPEC AG (x | !x);\\nOBSERVED x;")
    >>> a == b
    True
    >>> request_key(rml="MODULE m VAR x : boolean;\\n"
    ...             "ASSIGN next(x) := !x;\\nSPEC AG (x | !x); OBSERVED x;",
    ...             config=EngineConfig()) != \\
    ...     request_key(target="counter", config=EngineConfig())
    True
"""

from __future__ import annotations

import hashlib
from typing import Optional, Union

from ..engine import EngineConfig
from ..lang import module_to_str, parse_module
from ..lang.ast import Module

__all__ = ["KEY_SCHEME", "canonical_rml", "model_key", "request_key"]

#: Version tag of the key scheme (append-only; bump on any serialisation
#: change so stale cache entries self-invalidate by key mismatch).
KEY_SCHEME = "repro-key/v1"


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def canonical_rml(
    source: Union[str, Module], filename: Optional[str] = None
) -> str:
    """The parser∘printer normal form of ``source``.

    Accepts module text or an already-parsed :class:`~repro.lang.Module`
    (the server reuses the module it parsed for key computation).  Raises
    :class:`~repro.errors.ParseError` for invalid text.
    """
    module = (
        source
        if isinstance(source, Module)
        else parse_module(source, filename=filename)
    )
    return module_to_str(module)


def model_key(
    source: Union[str, Module], filename: Optional[str] = None
) -> str:
    """sha256 of the reprint-normalised model — invariant under
    whitespace/comment-only edits, distinct under any semantic edit."""
    return _sha256(canonical_rml(source, filename=filename))


def request_key(
    *,
    rml: Optional[Union[str, Module]] = None,
    target: Optional[str] = None,
    stage: Optional[str] = None,
    buggy: bool = False,
    config: Optional[EngineConfig] = None,
    filename: Optional[str] = None,
) -> str:
    """The ``repro-key/v1`` digest of one analysis request.

    Exactly one of ``rml`` (module text or parsed module) and ``target``
    (a builtin circuit name) must be given; ``stage``/``buggy`` select the
    property suite for builtins.  ``config`` defaults to the default
    :class:`~repro.engine.EngineConfig`.
    """
    if (rml is None) == (target is None):
        raise ValueError(
            "request_key takes exactly one of rml= (model text) and "
            "target= (builtin circuit name)"
        )
    config = config if config is not None else EngineConfig()
    if rml is not None:
        kind = "rml"
        model = model_key(rml, filename=filename)
        select = "-"
    else:
        kind = "builtin"
        model = f"builtin:{target}"
        select = f"stage={stage if stage is not None else '-'},buggy={int(buggy)}"
    header = "\n".join(
        (
            KEY_SCHEME,
            f"kind={kind}",
            f"model={model}",
            f"select={select}",
            f"config={config.fingerprint()}",
        )
    )
    return _sha256(header)
