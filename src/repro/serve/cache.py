"""Two-tier result cache: bounded in-memory LRU over a disk store.

One :class:`ResultCache` maps ``repro-key/v1`` request keys
(:mod:`repro.serve.keys`) to JSON-safe analysis results.  The memory tier
is a bounded LRU (``max_entries``); the disk tier is one JSON file per
key under the cache directory, written atomically (temp file +
``os.replace``) so a crashed writer can never leave a half-entry that a
reader would trust.

Entry format (``repro-cache-entry/v1``)::

    {
      "schema": "repro-cache-entry/v1",
      "engine": "<repro.__version__ that computed the result>",
      "key":    "<the request key, for self-description>",
      "result": { ...AnalysisResult JSON... }
    }

Entries are *versioned*: a read whose ``schema`` or ``engine`` does not
match the running process is deleted and counted as an invalidation —
an engine upgrade silently empties the cache instead of replaying
results a different engine computed.

Degradation, never failure: any :class:`OSError` while creating the
directory or writing an entry flips the cache to memory-only for the
rest of its life, with one :class:`RuntimeWarning` — a read-only cache
dir slows the service down; it must not take it down.  Per-file read
errors and corrupt JSON are treated as misses (corrupt files are
removed) without degrading the tier.

Hit/miss/eviction counts are kept per instance (:meth:`ResultCache.stats`)
and mirrored into the process-global :mod:`repro.obs.counters` registry
under ``serve.cache.*``, which is how they surface in ``repro-metrics/v1``
documents (``GET /v1/stats``).
"""

from __future__ import annotations

import copy
import json
import os
import tempfile
import warnings
from collections import OrderedDict
from pathlib import Path
from typing import Dict, Optional, Union

from .._version import __version__
from ..obs.counters import counter_inc

__all__ = ["ENTRY_SCHEMA", "ResultCache", "default_cache_dir"]

#: Schema tag of one on-disk cache entry.
ENTRY_SCHEMA = "repro-cache-entry/v1"

#: Default bound on the in-memory LRU tier.
DEFAULT_MAX_ENTRIES = 1024


def default_cache_dir() -> Path:
    """``$XDG_CACHE_HOME/repro`` or ``~/.cache/repro`` — the conventional
    per-user cache location the ``--cache-dir`` flag defaults to."""
    base = os.environ.get("XDG_CACHE_HOME")
    root = Path(base) if base else Path.home() / ".cache"
    return root / "repro"


class ResultCache:
    """A content-addressed result store keyed by request digests.

    ``directory=None`` runs memory-only (tests, ephemeral servers);
    otherwise the directory is created on first write.  Stored and
    returned results are deep-copied at the boundary, so callers may
    freely mutate what they get back (the server merges per-request lint
    into served results) without corrupting the cached value.
    """

    def __init__(
        self,
        directory: Optional[Union[str, Path]] = None,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        engine_version: str = __version__,
    ):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.directory = Path(directory) if directory is not None else None
        self.max_entries = max_entries
        self.engine_version = engine_version
        self._memory: "OrderedDict[str, Dict]" = OrderedDict()
        self._degraded = False
        self._counts = {
            "memory_hits": 0,
            "disk_hits": 0,
            "misses": 0,
            "stores": 0,
            "evictions": 0,
            "invalidations": 0,
            "disk_errors": 0,
        }

    # ------------------------------------------------------------------
    # Lookup / store
    # ------------------------------------------------------------------

    def get(self, key: str) -> Optional[Dict]:
        """The cached result for ``key``, or ``None`` on a miss."""
        entry = self._memory.get(key)
        if entry is not None:
            self._memory.move_to_end(key)
            self._count("memory_hits")
            return copy.deepcopy(entry)
        result = self._disk_get(key)
        if result is not None:
            self._remember(key, result)
            self._count("disk_hits")
            return copy.deepcopy(result)
        self._count("misses")
        return None

    def put(self, key: str, result: Dict) -> None:
        """Store ``result`` under ``key`` in both tiers."""
        result = copy.deepcopy(result)
        self._remember(key, result)
        self._disk_put(key, result)
        self._count("stores")

    @property
    def degraded(self) -> bool:
        """Whether a disk failure has flipped this cache to memory-only."""
        return self._degraded

    def stats(self) -> Dict[str, int]:
        """The instance counters, plus derived ``hits`` and size gauges."""
        out = dict(self._counts)
        out["hits"] = out["memory_hits"] + out["disk_hits"]
        out["memory_entries"] = len(self._memory)
        out["degraded"] = int(self._degraded)
        return out

    # ------------------------------------------------------------------
    # Memory tier
    # ------------------------------------------------------------------

    def _remember(self, key: str, result: Dict) -> None:
        self._memory[key] = result
        self._memory.move_to_end(key)
        while len(self._memory) > self.max_entries:
            self._memory.popitem(last=False)
            self._count("evictions")

    # ------------------------------------------------------------------
    # Disk tier
    # ------------------------------------------------------------------

    def _path(self, key: str) -> Path:
        assert self.directory is not None
        return self.directory / f"{key}.json"

    def _disk_get(self, key: str) -> Optional[Dict]:
        if self.directory is None or self._degraded:
            return None
        path = self._path(key)
        try:
            text = path.read_text()
        except FileNotFoundError:
            return None
        except OSError:
            self._count("disk_errors")
            return None
        try:
            entry = json.loads(text)
        except json.JSONDecodeError:
            entry = None
        if (
            not isinstance(entry, dict)
            or entry.get("schema") != ENTRY_SCHEMA
            or entry.get("engine") != self.engine_version
            or not isinstance(entry.get("result"), dict)
        ):
            # A different engine's answer (or a torn/corrupt file) is not
            # an answer to this key: drop it so it can be recomputed.
            self._count("invalidations")
            try:
                path.unlink()
            except OSError:
                self._count("disk_errors")
            return None
        return entry["result"]

    def _disk_put(self, key: str, result: Dict) -> None:
        if self.directory is None or self._degraded:
            return
        entry = {
            "schema": ENTRY_SCHEMA,
            "engine": self.engine_version,
            "key": key,
            "result": result,
        }
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                prefix=".tmp-", suffix=".json", dir=str(self.directory)
            )
            try:
                with os.fdopen(fd, "w") as handle:
                    json.dump(entry, handle, indent=2, sort_keys=True)
                    handle.write("\n")
                os.replace(tmp, self._path(key))
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError as exc:
            self._degrade(exc)

    def _degrade(self, exc: OSError) -> None:
        self._count("disk_errors")
        if self._degraded:
            return
        self._degraded = True
        counter_inc("serve.cache.degraded")
        warnings.warn(
            f"repro.serve cache directory {self.directory} is unusable "
            f"({exc}); continuing memory-only — results are unaffected, "
            f"but nothing will persist across restarts",
            RuntimeWarning,
            stacklevel=4,
        )

    def _count(self, name: str) -> None:
        self._counts[name] += 1
        counter_inc(f"serve.cache.{name}")
