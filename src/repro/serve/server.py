"""The analysis server: asyncio HTTP/1.1 + cache + dedup + worker pool.

``repro serve`` keeps parsed models, warm worker processes, and a
content-addressed result cache resident between requests, so clients pay
per *novel* analysis rather than per request.  The HTTP layer is
hand-rolled on ``asyncio.start_server`` — three routes, JSON in and out,
``Connection: close`` — because the protocol surface is tiny and the
stdlib ships no async HTTP server.

Routes
------
``POST /v1/analyze``
    Body: a JSON payload (see :func:`repro.serve.workers.job_from_payload`)
    naming either an ``rml`` model text or a ``builtin`` target, plus an
    optional ``config``.  Response envelope::

        {"schema": "repro-serve/v1", "key": "<hex>",
         "cached": true|false, "result": { ...AnalysisResult JSON... }}

    Errors come back structured: 400 for malformed JSON/payloads, 413
    for oversized bodies, 422 for :class:`~repro.errors.ParseError` /
    :class:`~repro.errors.ConfigError` (with source location for parse
    errors), 500 when a worker dies mid-job (the pool respawns).

``GET /v1/health``
    Liveness + identity: engine version, worker mode, cache directory.

``GET /v1/stats``
    A ``repro-metrics/v1`` counters document: the process-global counter
    registry overlaid with this server's live cache/pool/in-flight
    gauges — how tests assert "the second run was all cache hits" and
    "N identical concurrent requests ran one analysis".

Request flow, and where each satellite guarantee lives:

1. The raw body's sha256 indexes a bounded *memo* of
   ``(request_key, lint)`` pairs, so a repeated identical body costs no
   parse at all (the parse-count telemetry asserts this).
2. On memo miss, rml text is parsed once; the module computes the
   reprint-normalised ``repro-key/v1`` request key *and* the raw-text
   lint document, then (inline mode) is handed to the worker so the
   analysis reuses the same AST.
3. The key hits the two-tier :class:`~repro.serve.cache.ResultCache`;
   a hit answers without touching the pool.
4. Misses land in the in-flight table: concurrent identical requests
   all ``await`` one pool future (``asyncio.shield`` keeps the job
   alive if an impatient client disconnects).
5. Cached results exclude lint — lint anchors to raw text that the
   normalised key treats as noise — and the per-request lint from step
   2 is merged into every response, so comment-only edits share one
   cached engine result yet see their own findings.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

from .._version import __version__
from ..errors import ConfigError, ParseError, ServeError
from ..obs.counters import counter_inc, counters_snapshot
from ..obs.telemetry import METRICS_SCHEMA, TELEMETRY_COUNTERS
from .cache import DEFAULT_MAX_ENTRIES, ResultCache, default_cache_dir
from .keys import request_key
from .workers import (
    DEFAULT_RECYCLE_AFTER,
    BrokenProcessPool,
    WorkerPool,
    job_from_payload,
)

__all__ = ["SERVE_SCHEMA", "AnalysisServer", "ServeOptions", "run_server"]

#: Schema tag of every response body this server writes.
SERVE_SCHEMA = "repro-serve/v1"

#: Default TCP port ("8737" spells *VRFY* on a phone keypad, near enough).
DEFAULT_PORT = 8737

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    411: "Length Required",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    500: "Internal Server Error",
}

_KIND_CRASH = "__crash__"


@dataclass(frozen=True)
class ServeOptions:
    """Everything ``repro serve`` is configured by (CLI flags mirror this)."""

    host: str = "127.0.0.1"
    port: int = DEFAULT_PORT
    #: Worker processes; ``0`` runs analyses inline (single thread, parse
    #: reuse) — the test/dev mode.
    workers: int = 2
    #: Disk cache directory; ``None`` uses :func:`default_cache_dir`.
    cache_dir: Optional[Union[str, Path]] = None
    #: Skip the disk tier entirely (ephemeral servers, tests).
    memory_cache_only: bool = False
    max_cache_entries: int = DEFAULT_MAX_ENTRIES
    #: Jobs per worker before the pool recycles itself.
    recycle_after: int = DEFAULT_RECYCLE_AFTER
    #: Largest request body accepted (bytes); beyond it → HTTP 413.
    max_body: int = 1 << 20
    #: Seconds to wait for a slow client's headers/body.
    read_timeout: float = 30.0
    #: Honour test-only payloads (worker crash injection).  Never set in
    #: production: it lets a request kill a worker on purpose.
    test_hooks: bool = False


class AnalysisServer:
    """One listening socket, one cache, one worker pool.

    Drive with :meth:`start` / :meth:`aclose` inside a running event
    loop (tests), or via :func:`run_server` (CLI) which adds signal
    handling.  ``server.port`` carries the real port after ``start()``
    (useful with ``port=0``).
    """

    def __init__(self, options: Optional[ServeOptions] = None):
        self.options = options if options is not None else ServeOptions()
        directory = (
            None
            if self.options.memory_cache_only
            else (self.options.cache_dir or default_cache_dir())
        )
        self.cache = ResultCache(
            directory, max_entries=self.options.max_cache_entries
        )
        self.pool = WorkerPool(
            workers=self.options.workers,
            recycle_after=self.options.recycle_after,
        )
        self.host = self.options.host
        self.port = self.options.port
        self._server: Optional[asyncio.AbstractServer] = None
        #: request_key -> running analysis task (the dedup table).
        self._inflight: Dict[str, asyncio.Task] = {}
        #: sha256(raw body) -> (request_key, lint JSON or None); bounded
        #: LRU so repeated identical bodies skip parse + key + lint.
        self._memo: "OrderedDict[str, Tuple[str, Optional[Dict]]]" = (
            OrderedDict()
        )
        self._memo_max = max(self.options.max_cache_entries, 64)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle,
            self.host,
            self.options.port,
            limit=self.options.max_body + 65536,
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def aclose(self) -> None:
        """Stop accepting, let in-flight analyses settle, stop the pool."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        pending = list(self._inflight.values())
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        self.pool.shutdown(wait=False)

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            status, payload = await self._respond_to(reader)
            await self._write_response(writer, status, payload)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-exchange; nothing to answer
        except Exception as exc:  # last-ditch: never kill the accept loop
            counter_inc("serve.server.errors")
            try:
                await self._write_response(
                    writer, 500, _error("internal", str(exc))
                )
            except (ConnectionError, OSError):
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _respond_to(self, reader) -> Tuple[int, Dict]:
        """Parse one request off ``reader`` and compute its response."""
        opts = self.options
        try:
            head = await asyncio.wait_for(
                reader.readuntil(b"\r\n\r\n"), timeout=opts.read_timeout
            )
        except (asyncio.LimitOverrunError, ValueError):
            return 400, _error("bad-request", "request headers too large")
        except asyncio.TimeoutError:
            return 400, _error("bad-request", "timed out reading request")
        counter_inc("serve.server.requests")
        try:
            request_line, headers = _parse_head(head)
            method, target = request_line
        except ValueError as exc:
            return 400, _error("bad-request", str(exc))

        if target == "/v1/health":
            if method != "GET":
                return 405, _error("method-not-allowed", f"{method} {target}")
            return 200, self._health_doc()
        if target == "/v1/stats":
            if method != "GET":
                return 405, _error("method-not-allowed", f"{method} {target}")
            return 200, self.stats_doc()
        if target != "/v1/analyze":
            return 404, _error("not-found", f"no route {target}")
        if method != "POST":
            return 405, _error(
                "method-not-allowed", f"{target} only accepts POST"
            )

        length_text = headers.get("content-length")
        if length_text is None:
            return 411, _error("length-required", "Content-Length required")
        try:
            length = int(length_text)
        except ValueError:
            return 400, _error("bad-request", "malformed Content-Length")
        if length > opts.max_body:
            return 413, _error(
                "payload-too-large",
                f"body of {length} bytes exceeds limit of {opts.max_body}",
            )
        try:
            body = await asyncio.wait_for(
                reader.readexactly(length), timeout=opts.read_timeout
            )
        except asyncio.TimeoutError:
            return 400, _error("bad-request", "timed out reading body")
        return await self._analyze(body)

    async def _write_response(
        self, writer, status: int, payload: Dict
    ) -> None:
        body = (json.dumps(payload) + "\n").encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n"
            f"\r\n"
        ).encode("ascii")
        writer.write(head + body)
        await writer.drain()

    # ------------------------------------------------------------------
    # The analyze pipeline
    # ------------------------------------------------------------------

    async def _analyze(self, body: bytes) -> Tuple[int, Dict]:
        counter_inc("serve.server.analyze_requests")
        try:
            payload = json.loads(body)
        except json.JSONDecodeError as exc:
            return 400, _error("bad-json", f"body is not valid JSON: {exc}")
        if not isinstance(payload, dict):
            return 400, _error("bad-request", "body must be a JSON object")
        if payload.get("kind") == _KIND_CRASH and self.options.test_hooks:
            return await self._run_crash_hook(payload)

        raw_hash = hashlib.sha256(body).hexdigest()
        memo = self._memo.get(raw_hash)
        module = None
        if memo is not None:
            self._memo.move_to_end(raw_hash)
            counter_inc("serve.server.memo_hits")
        else:
            try:
                job = job_from_payload(payload)
            except ConfigError as exc:
                return 422, _error("config-error", str(exc))
            except ValueError as exc:
                return 400, _error("bad-request", str(exc))
            if job.source is not None:
                from ..lang import parse_module
                from ..lint import lint_module

                try:
                    module = parse_module(job.source, filename=job.path)
                except ParseError as exc:
                    doc = _error("parse-error", str(exc))
                    doc["error"].update(
                        line=exc.line,
                        column=exc.column,
                        filename=exc.filename,
                    )
                    return 422, doc
                key = request_key(rml=module, config=job.config)
                lint = lint_module(
                    module,
                    text=job.source,
                    filename=job.path or module.filename,
                ).to_json()
            else:
                key = request_key(
                    target=job.target,
                    stage=job.stage,
                    buggy=job.buggy,
                    config=job.config,
                )
                lint = None
            memo = (key, lint)
            self._memo[raw_hash] = memo
            while len(self._memo) > self._memo_max:
                self._memo.popitem(last=False)
        key, lint = memo

        cached = self.cache.get(key)
        if cached is not None:
            return 200, self._envelope(key, cached, lint, was_cached=True)

        running = self._inflight.get(key)
        if running is not None:
            counter_inc("serve.server.dedup_joins")
        else:
            running = asyncio.get_running_loop().create_task(
                self._run_analysis(key, payload, module)
            )
            self._inflight[key] = running
        try:
            # shield: an impatient client disconnecting must not cancel
            # the shared analysis other waiters (and the cache) want.
            result = await asyncio.shield(running)
        except ServeError as exc:
            counter_inc("serve.server.errors")
            return exc.status or 500, _error("worker-crash", str(exc))
        except Exception as exc:
            counter_inc("serve.server.errors")
            return 500, _error("internal", str(exc))
        return 200, self._envelope(key, result, lint, was_cached=False)

    async def _run_analysis(
        self, key: str, payload: Dict, module
    ) -> Dict:
        """The single shared computation behind one request key."""
        try:
            future = self.pool.submit(payload, module)
            try:
                result = await asyncio.wrap_future(future)
            except BrokenProcessPool as exc:
                self.pool.reset_after_crash()
                counter_inc("serve.workers.crash_respawns")
                raise ServeError(
                    "analysis worker died mid-job; pool respawned — retry "
                    "the request",
                    status=500,
                ) from exc
            self.cache.put(key, result)
            return result
        finally:
            self._inflight.pop(key, None)

    async def _run_crash_hook(self, payload: Dict) -> Tuple[int, Dict]:
        """Test hook: run a worker-killing payload through the real
        submit → crash → respawn path (process pools only)."""
        if self.pool.inline:
            return 400, _error(
                "bad-request", "crash hook requires process workers"
            )
        try:
            await asyncio.wrap_future(self.pool.submit(payload))
        except BrokenProcessPool:
            self.pool.reset_after_crash()
            counter_inc("serve.workers.crash_respawns")
            counter_inc("serve.server.errors")
            return 500, _error(
                "worker-crash",
                "analysis worker died mid-job; pool respawned — retry "
                "the request",
            )
        return 500, _error("internal", "crash hook did not crash")

    def _envelope(
        self, key: str, result: Dict, lint: Optional[Dict], was_cached: bool
    ) -> Dict:
        # Merge the per-request lint into rml results that carry one
        # locally (ok/fail analyses of a parsed module) — error results
        # and builtins have no lint block in direct execution either.
        if (
            lint is not None
            and result.get("kind") == "rml"
            and result.get("status") in ("ok", "fail")
        ):
            result = dict(result)
            result["lint"] = lint
        return {
            "schema": SERVE_SCHEMA,
            "key": key,
            "cached": was_cached,
            "result": result,
        }

    # ------------------------------------------------------------------
    # Introspection documents
    # ------------------------------------------------------------------

    def _health_doc(self) -> Dict:
        return {
            "schema": SERVE_SCHEMA,
            "status": "ok",
            "version": __version__,
            "workers": self.pool.workers,
            "inline": self.pool.inline,
            "cache_dir": (
                str(self.cache.directory)
                if self.cache.directory is not None
                else None
            ),
        }

    def stats_doc(self) -> Dict:
        """The ``repro-metrics/v1`` counters document ``/v1/stats`` serves:
        the global registry overlaid with this server's live gauges."""
        counters = counters_snapshot()
        for name, value in self.cache.stats().items():
            counters[f"serve.cache.{name}"] = value
        for name, value in self.pool.stats().items():
            counters[f"serve.workers.{name}"] = value
        counters["serve.server.inflight"] = len(self._inflight)
        counters["serve.server.memo_entries"] = len(self._memo)
        return {
            "schema": METRICS_SCHEMA,
            "level": TELEMETRY_COUNTERS,
            "counters": counters,
        }


def _error(kind: str, message: str) -> Dict:
    return {
        "schema": SERVE_SCHEMA,
        "error": {"type": kind, "message": message},
    }


def _parse_head(head: bytes) -> Tuple[Tuple[str, str], Dict[str, str]]:
    """Split raw header bytes into ``(method, target)`` + header map."""
    try:
        text = head.decode("latin-1")
    except UnicodeDecodeError as exc:  # pragma: no cover - latin-1 total
        raise ValueError(f"undecodable request head: {exc}") from exc
    lines = text.split("\r\n")
    parts = lines[0].split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise ValueError(f"malformed request line {lines[0]!r}")
    method, target, _version = parts
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise ValueError(f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    return (method, target), headers


async def _serve_until_stopped(options: ServeOptions) -> int:
    loop = asyncio.get_running_loop()
    server = AnalysisServer(options)
    await server.start()
    cache_label = (
        str(server.cache.directory)
        if server.cache.directory is not None
        else "memory-only"
    )
    mode = "inline" if server.pool.inline else f"{server.pool.workers} workers"
    print(
        f"repro serve: listening on {server.url} ({mode}, cache {cache_label})",
        flush=True,
    )
    stop = asyncio.Event()
    import signal

    installed = []
    for signame in ("SIGTERM", "SIGINT"):
        signum = getattr(signal, signame)
        try:
            loop.add_signal_handler(signum, stop.set)
            installed.append(signum)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass
    try:
        await stop.wait()
    finally:
        for signum in installed:
            loop.remove_signal_handler(signum)
        print("repro serve: shutting down", flush=True)
        await server.aclose()
    return 0


def run_server(options: Optional[ServeOptions] = None) -> int:
    """Run the server until SIGTERM/SIGINT — the ``repro serve`` command.

    Returns the process exit code (0 on clean shutdown).
    """
    return asyncio.run(_serve_until_stopped(options or ServeOptions()))
