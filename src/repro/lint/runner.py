"""Lint entry points: modules, source text, and files on disk.

``lint_source`` is the canonical path: parse (capturing syntax errors as
``RML000`` diagnostics rather than exceptions), run the rule battery,
then apply file-scope waiver pragmas.  A pragma is an ``.rml`` comment::

    -- repro-lint: allow RML016, RML013

anywhere in the file; it drops every diagnostic carrying a listed code
and counts it in :attr:`LintReport.suppressed` instead.  Pragmas are
scanned from the raw text (the tokenizer discards comments), so they
work even on files that fail to parse.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import FrozenSet, List, Optional, Union

from ..errors import ParseError
from ..lang.ast import Module
from ..lang.parser import parse_module
from .diagnostics import CODE_INDEX, Diagnostic, LintReport
from .rules import run_rules

__all__ = ["lint_module", "lint_source", "lint_path", "scan_pragmas"]

_PRAGMA = re.compile(r"--\s*repro-lint:\s*allow\s+([A-Z0-9,\s]+)")
_LOCATION_PREFIX = re.compile(r"^\S*:\d+:\d+:\s+")


def scan_pragmas(text: str) -> FrozenSet[str]:
    """Codes waived by ``-- repro-lint: allow`` comments in ``text``.

    Unregistered codes in a pragma are ignored (tolerant by design:
    a file may waive a code introduced by a newer release).
    """
    allowed = set()
    for match in _PRAGMA.finditer(text):
        for code in match.group(1).split(","):
            code = code.strip()
            if code in CODE_INDEX:
                allowed.add(code)
    return frozenset(allowed)


def _apply_pragmas(
    diagnostics: List[Diagnostic],
    allowed: FrozenSet[str],
    filename: str,
) -> LintReport:
    kept = [d for d in diagnostics if d.code not in allowed]
    return LintReport(
        diagnostics=kept,
        files=[filename],
        suppressed=len(diagnostics) - len(kept),
    )


def lint_module(
    module: Module,
    text: Optional[str] = None,
    filename: Optional[str] = None,
) -> LintReport:
    """Lint an already-parsed module.

    ``text`` (the original source) improves anchors for constructs the
    AST carries no position for, and enables waiver pragmas.
    """
    name = filename or module.filename or "<module>"
    diagnostics = run_rules(module, name, text)
    allowed = scan_pragmas(text) if text else frozenset()
    return _apply_pragmas(diagnostics, allowed, name)


def lint_source(text: str, filename: Optional[str] = None) -> LintReport:
    """Lint ``.rml`` source text.

    A file that fails to parse yields a single ``RML000`` diagnostic at
    the parser's reported position — linting never raises on bad input.
    """
    name = filename or "<module>"
    try:
        module = parse_module(text, filename=name)
    except ParseError as exc:
        # The parser prefixes messages with "file:line:col: "; the
        # diagnostic carries the location structurally, so strip it.
        message = _LOCATION_PREFIX.sub("", str(exc))
        diagnostics = [
            Diagnostic(
                "RML000",
                message,
                name,
                exc.line or 0,
                exc.column or 0,
            )
        ]
        return _apply_pragmas(diagnostics, scan_pragmas(text), name)
    return lint_module(module, text=text, filename=name)


def lint_path(path: Union[str, Path]) -> LintReport:
    """Lint one ``.rml`` file from disk."""
    path = Path(path)
    return lint_source(path.read_text(), filename=str(path))
