"""Renderers for lint reports: human text and ``repro-lint/v1`` JSON.

Both renderings are pure functions of the (already-sorted) report, so
the same model text always produces byte-identical output — the same
determinism contract the suite reports and fuzz oracle rely on.
"""

from __future__ import annotations

import json

from .diagnostics import LintReport

__all__ = ["render_text", "render_json"]


def render_text(report: LintReport, verbose: bool = False) -> str:
    """GCC-style one-line-per-finding text, with a summary footer.

    ``verbose`` appends each code's registered name, e.g.
    ``warning[RML011 observed-unmentioned]``.
    """
    lines = []
    for diagnostic in report.diagnostics:
        if verbose:
            lines.append(
                f"{diagnostic.location()}: {diagnostic.severity}"
                f"[{diagnostic.code} {diagnostic.name}] {diagnostic.message}"
            )
        else:
            lines.append(diagnostic.format())
    checked = len(report.files)
    noun = "file" if checked == 1 else "files"
    if report.clean:
        summary = f"{checked} {noun} checked, no findings"
    else:
        parts = []
        for severity, count in (
            ("error", report.errors),
            ("warning", report.warnings),
            ("info", report.infos),
        ):
            if count:
                plural = "" if count == 1 else "s"
                parts.append(f"{count} {severity}{plural}")
        summary = f"{checked} {noun} checked, " + ", ".join(parts)
    if report.suppressed:
        summary += f" ({report.suppressed} suppressed)"
    lines.append(summary)
    return "\n".join(lines) + "\n"


def render_json(report: LintReport, indent: int = 2) -> str:
    """The ``repro-lint/v1`` document as a JSON string."""
    return json.dumps(report.to_json(), indent=indent, sort_keys=True) + "\n"
