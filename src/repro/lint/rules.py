"""The RML001…RML016 analysis battery.

Each rule is a function over a shared :class:`LintContext` (symbol
table, dependency graph, constant env, raw source text) appending
:class:`~repro.lint.diagnostics.Diagnostic` records.  Rules are
independent and engine-free: everything is derived from the parsed
module, never from a built BDD model.

Error-severity rules (RML001–RML005) statically mirror the elaborator's
validation so ``repro lint`` predicts, with positions, exactly what
``elaborate()`` would reject; warning rules find models the engine
happily accepts but whose verification is structurally hollow — the
paper's "looks done, isn't" failure mode caught before any BDD work.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..ctl.ast import (
    AU,
    EU,
    Atom,
    CtlAnd,
    CtlFormula,
    CtlIff,
    CtlImplies,
    CtlNot,
    CtlOr,
    CtlXor,
    formula_atoms,
    is_propositional,
    to_expr,
)
from ..expr.ast import (
    And,
    Const,
    Expr,
    Iff,
    Implies,
    Not,
    Or,
    WordCmp,
    Xor,
)
from ..lang.ast import (
    Case,
    Module,
    NextAssign,
    WordConst,
    WordExpr,
    WordOffset,
    WordRef,
    WordSum,
)
from .coi import observed_cone, spec_seeds, union_property_cone
from .deps import DepGraph, build_deps, define_cycles, value_atoms
from .diagnostics import Diagnostic
from .folding import (
    ConstEnv,
    cmp_constant_by_width,
    constant_env,
    fold_expr,
)
from .symbols import KIND_INPUT, KIND_LATCH, SymbolTable

__all__ = ["LintContext", "run_rules"]


@dataclass
class LintContext:
    """Shared state for one module's rule run."""

    module: Module
    table: SymbolTable
    graph: DepGraph
    env: ConstEnv
    filename: str
    text: Optional[str] = None
    diagnostics: List[Diagnostic] = field(default_factory=list)
    #: name -> codes already reported for it (cross-rule noise control).
    flagged: Dict[str, Set[str]] = field(default_factory=dict)

    def emit(
        self, code: str, message: str, line: int = 0, column: int = 0,
        about: Optional[str] = None,
    ) -> None:
        self.diagnostics.append(
            Diagnostic(code, message, self.filename, line, column)
        )
        if about is not None:
            self.flagged.setdefault(about, set()).add(code)

    def locate(self, keyword: str, name: Optional[str] = None) -> Tuple[int, int]:
        """Best-effort raw-text anchor for constructs the AST carries no
        position for (``OBSERVED`` names, ``DONTCARE``): the first
        occurrence of ``name`` at or after the ``keyword`` line."""
        if self.text is None:
            return (0, 0)
        lines = self.text.splitlines()
        start = next(
            (i for i, raw in enumerate(lines)
             if raw.split("--", 1)[0].strip().startswith(keyword)),
            None,
        )
        if start is None:
            return (0, 0)
        if name is None:
            return (start + 1, lines[start].index(keyword) + 1)
        pattern = re.compile(rf"\b{re.escape(name)}\b")
        for i in range(start, len(lines)):
            match = pattern.search(lines[i].split("--", 1)[0])
            if match is not None:
                return (i + 1, match.start() + 1)
        return (start + 1, lines[start].index(keyword) + 1)

    def next_of(self, latch: str) -> Optional[NextAssign]:
        for assign in self.module.nexts:
            if assign.target == latch:
                return assign
        return None


# ----------------------------------------------------------------------
# Expression walking helpers
# ----------------------------------------------------------------------


def _walk_exprs(expr: Expr):
    """Yield every node of an expression tree, iteratively."""
    stack = [expr]
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, Not):
            stack.append(node.operand)
        elif isinstance(node, (And, Or)):
            stack.extend(node.args)
        elif isinstance(node, (Xor, Iff, Implies)):
            stack.append(node.lhs)
            stack.append(node.rhs)


def _walk_ctl(formula: CtlFormula):
    """Yield every CTL node, iteratively."""
    stack = [formula]
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (CtlNot,)):
            stack.append(node.operand)
        elif isinstance(node, (CtlAnd, CtlOr)):
            stack.extend(node.args)
        elif isinstance(node, (CtlImplies, CtlIff, CtlXor, AU, EU)):
            stack.append(node.lhs)
            stack.append(node.rhs)
        elif hasattr(node, "operand"):  # AX/AG/AF/EX/EG/EF
            stack.append(node.operand)


def _expr_sites(ctx: LintContext):
    """Every propositional expression in the module with its anchor:
    ``(expr, what, line, column)``."""
    for assign in ctx.module.nexts:
        what = f"next({assign.target})"
        value = assign.value
        if isinstance(value, Case):
            for arm in value.arms:
                yield arm.condition, what, assign.line, assign.column
                if isinstance(arm.value, Expr):
                    yield arm.value, what, assign.line, assign.column
        elif isinstance(value, Expr):
            yield value, what, assign.line, assign.column
    for define in ctx.module.defines:
        if isinstance(define.value, Expr):
            yield define.value, f"DEFINE {define.name}", define.line, \
                define.column
    for fairness in ctx.module.fairness:
        yield fairness.expr, "FAIRNESS", fairness.line, fairness.column
    if ctx.module.dont_care is not None:
        line, column = ctx.locate("DONTCARE")
        yield ctx.module.dont_care, "DONTCARE", line, column
    for spec in ctx.module.specs:
        for node in _walk_ctl(spec.formula):
            if isinstance(node, Atom):
                yield node.expr, "SPEC", spec.line, spec.column


# ----------------------------------------------------------------------
# RML001 / RML002 / RML003: name and structure errors
# ----------------------------------------------------------------------


def rule_unknown_name(ctx: LintContext) -> None:
    """RML001: references to names no declaration provides."""
    def check(atoms, what: str, line: int, column: int) -> None:
        for atom in sorted(set(atoms)):
            if ctx.table.resolve(atom) is None:
                ctx.emit(
                    "RML001",
                    f"unknown signal {atom!r} in {what}",
                    line,
                    column,
                )

    for assign in ctx.module.nexts:
        check(
            value_atoms(assign.value),
            f"next({assign.target})",
            assign.line,
            assign.column,
        )
    for define in ctx.module.defines:
        check(
            value_atoms(define.value),
            f"DEFINE {define.name}",
            define.line,
            define.column,
        )
    for fairness in ctx.module.fairness:
        check(
            fairness.expr.atoms(), "FAIRNESS", fairness.line, fairness.column
        )
    if ctx.module.dont_care is not None:
        line, column = ctx.locate("DONTCARE")
        check(ctx.module.dont_care.atoms(), "DONTCARE", line, column)
    for spec in ctx.module.specs:
        check(formula_atoms(spec.formula), "SPEC", spec.line, spec.column)
    for name in ctx.module.observed:
        if ctx.table.resolve(name) is None:
            line, column = ctx.locate("OBSERVED", name)
            ctx.emit(
                "RML001", f"unknown OBSERVED signal {name!r}", line, column
            )


def rule_bit_collision(ctx: LintContext) -> None:
    """RML002: implicit word-bit names colliding with declarations."""
    toplevel = set(ctx.table.symbols)
    seen_bits: Dict[str, str] = {}
    for word in sorted(ctx.table.word_bits):
        anchor = ctx.table.symbols.get(word)
        line = anchor.line if anchor else 0
        column = anchor.column if anchor else 0
        for bit in ctx.table.word_bits[word]:
            if bit in toplevel:
                ctx.emit(
                    "RML002",
                    f"bit {bit!r} of word {word!r} collides with another "
                    f"declaration",
                    line,
                    column,
                )
            elif bit in seen_bits and seen_bits[bit] != word:
                ctx.emit(
                    "RML002",
                    f"bit {bit!r} of word {word!r} collides with a bit of "
                    f"word {seen_bits[bit]!r}",
                    line,
                    column,
                )
            else:
                seen_bits[bit] = word


def rule_define_cycle(ctx: LintContext) -> None:
    """RML003: combinational DEFINE → DEFINE cycles."""
    for cycle in define_cycles(ctx.graph, ctx.table):
        first = ctx.table.symbols[cycle[0]]
        loop = " -> ".join(cycle + [cycle[0]])
        ctx.emit(
            "RML003",
            f"combinational cycle through DEFINE signals: {loop}",
            first.line,
            first.column,
        )


# ----------------------------------------------------------------------
# RML004 / RML005: case and width errors
# ----------------------------------------------------------------------


def rule_case_exhaustive(ctx: LintContext) -> None:
    """RML004: the mandatory ``TRUE`` default arm is missing."""
    for assign in ctx.module.nexts:
        value = assign.value
        if not isinstance(value, Case) or not value.arms:
            continue
        last = value.arms[-1].condition
        if not (isinstance(last, Const) and last.value):
            ctx.emit(
                "RML004",
                f"case for next({assign.target}) is not exhaustive: the "
                f"last arm's condition must be TRUE",
                assign.line,
                assign.column,
            )


def rule_width_mismatch(ctx: LintContext) -> None:
    """RML005: word values that cannot fit (or type) their target."""

    def check_word_value(value, target: str, width: int, line, column):
        where = f"next({target})"
        if isinstance(value, WordConst):
            if value.value >= (1 << width):
                ctx.emit(
                    "RML005",
                    f"constant {value.value} out of range for {width}-bit "
                    f"word {target!r}",
                    line,
                    column,
                )
        elif isinstance(value, WordRef):
            source = ctx.table.width_of(value.name)
            if ctx.table.resolve(value.name) is None:
                return  # RML001 already
            if value.name not in ctx.table.word_bits:
                ctx.emit(
                    "RML005",
                    f"{value.name!r} is not a word in {where}",
                    line,
                    column,
                )
            elif source is not None and source > width:
                ctx.emit(
                    "RML005",
                    f"word {value.name!r} ({source} bits) is wider than "
                    f"{target!r} ({width} bits)",
                    line,
                    column,
                )
        elif isinstance(value, WordOffset):
            source = ctx.table.width_of(value.name)
            if ctx.table.resolve(value.name) is None:
                return  # RML001 already
            if value.name not in ctx.table.word_bits:
                ctx.emit(
                    "RML005",
                    f"{value.name!r} is not a word in {where}",
                    line,
                    column,
                )
            elif source is not None and source != width:
                ctx.emit(
                    "RML005",
                    f"offset arithmetic needs matching widths: "
                    f"{value.name!r} is {source} bits, {target!r} is {width}",
                    line,
                    column,
                )
        elif isinstance(value, WordSum):
            ctx.emit(
                "RML005",
                f"word sums are only allowed in DEFINE, not in {where}",
                line,
                column,
            )
        elif isinstance(value, Expr):
            ctx.emit(
                "RML005",
                f"next({target}) needs a word value, not a boolean "
                f"expression",
                line,
                column,
            )

    for assign in ctx.module.nexts:
        symbol = ctx.table.symbols.get(assign.target)
        if symbol is None:
            continue
        value = assign.value
        if symbol.is_word:
            width = symbol.width or 1
            if isinstance(value, Case):
                for arm in value.arms:
                    check_word_value(
                        arm.value, assign.target, width,
                        assign.line, assign.column,
                    )
            else:
                check_word_value(
                    value, assign.target, width, assign.line, assign.column
                )
        else:
            values = (
                [arm.value for arm in value.arms]
                if isinstance(value, Case)
                else [value]
            )
            for arm_value in values:
                if isinstance(arm_value, WordExpr):
                    ctx.emit(
                        "RML005",
                        f"next({assign.target}) needs a boolean expression, "
                        f"not a word value",
                        assign.line,
                        assign.column,
                    )
    for define in ctx.module.defines:
        if isinstance(define.value, WordSum):
            for operand in (define.value.lhs, define.value.rhs):
                if ctx.table.resolve(operand) is None:
                    continue  # RML001 already
                if operand not in ctx.table.word_bits:
                    ctx.emit(
                        "RML005",
                        f"word sum operand {operand!r} is not a word",
                        define.line,
                        define.column,
                    )


# ----------------------------------------------------------------------
# RML006: width-constant comparisons
# ----------------------------------------------------------------------


def rule_constant_compare(ctx: LintContext) -> None:
    """RML006: comparisons decided by the word's width alone."""
    seen: Set[Tuple[int, int, str]] = set()
    for expr, what, line, column in _expr_sites(ctx):
        for node in _walk_exprs(expr):
            if not isinstance(node, WordCmp) or isinstance(node.rhs, str):
                continue
            width = ctx.table.width_of(node.lhs)
            if width is None:
                continue  # RML001 already
            constant = cmp_constant_by_width(node.op, int(node.rhs), width)
            if constant is None:
                continue
            key = (line, column, f"{node.lhs} {node.op} {node.rhs}")
            if key in seen:
                continue
            seen.add(key)
            ctx.emit(
                "RML006",
                f"comparison '{node.lhs} {node.op} {node.rhs}' is always "
                f"{str(constant).lower()}: {node.lhs!r} is only "
                f"{width} bits (max {(1 << width) - 1})",
                line,
                column,
            )


# ----------------------------------------------------------------------
# RML007 / RML008: use-def smells
# ----------------------------------------------------------------------


def _mention_sets(ctx: LintContext) -> Tuple[Set[str], Set[str]]:
    """(signals read by some logic, signals mentioned by properties/
    fairness/dontcare/observed)."""
    read: Set[str] = set()
    for read_by in ctx.graph.deps.values():
        read |= read_by
    mentioned: Set[str] = set()
    for seeds in spec_seeds(ctx.module, ctx.table):
        mentioned |= seeds
    for fairness in ctx.module.fairness:
        for atom in fairness.expr.atoms():
            name = ctx.table.resolve(atom)
            if name is not None:
                mentioned.add(name)
    if ctx.module.dont_care is not None:
        for atom in ctx.module.dont_care.atoms():
            name = ctx.table.resolve(atom)
            if name is not None:
                mentioned.add(name)
    for observed in ctx.module.observed:
        name = ctx.table.resolve(observed)
        if name is not None:
            mentioned.add(name)
    return read, mentioned


def rule_unused_signal(ctx: LintContext) -> None:
    """RML007: inputs and DEFINEs nothing ever reads or mentions."""
    read, mentioned = _mention_sets(ctx)
    for symbol in ctx.table.symbols.values():
        if symbol.kind == KIND_LATCH:
            continue  # latches get the sharper RML008
        if symbol.name in read or symbol.name in mentioned:
            continue
        kind = "input" if symbol.kind == KIND_INPUT else "DEFINE"
        ctx.emit(
            "RML007",
            f"{kind} {symbol.name!r} is never read by any logic, "
            f"property, or OBSERVED list",
            symbol.line,
            symbol.column,
            about=symbol.name,
        )


def rule_write_only_latch(ctx: LintContext) -> None:
    """RML008: latches only their own next-state logic ever reads."""
    readers = ctx.graph.readers()
    _, mentioned = _mention_sets(ctx)
    for symbol in ctx.table.symbols.values():
        if symbol.kind != KIND_LATCH or symbol.name in mentioned:
            continue
        if readers.get(symbol.name, set()) - {symbol.name}:
            continue
        ctx.emit(
            "RML008",
            f"latch {symbol.name!r} is write-only: nothing outside its own "
            f"next-state logic reads it and no property observes it",
            symbol.line,
            symbol.column,
            about=symbol.name,
        )


# ----------------------------------------------------------------------
# RML009 / RML010: case-arm reachability
# ----------------------------------------------------------------------


def rule_case_arms(ctx: LintContext) -> None:
    """RML009 unreachable arms and RML010 overlapping (duplicate) arms."""
    for assign in ctx.module.nexts:
        value = assign.value
        if not isinstance(value, Case):
            continue
        seen_conditions: List = []
        always_taken = False
        for i, arm in enumerate(value.arms):
            position = f"arm {i + 1} of next({assign.target})"
            duplicate = next(
                (
                    j
                    for j, earlier in enumerate(seen_conditions)
                    if earlier == arm.condition
                ),
                None,
            )
            if duplicate is not None:
                ctx.emit(
                    "RML010",
                    f"{position} repeats the condition of arm "
                    f"{duplicate + 1}; first match wins, so it never fires",
                    assign.line,
                    assign.column,
                )
                seen_conditions.append(arm.condition)
                continue
            seen_conditions.append(arm.condition)
            if always_taken:
                ctx.emit(
                    "RML009",
                    f"{position} is unreachable: an earlier arm's condition "
                    f"is always true",
                    assign.line,
                    assign.column,
                )
                continue
            folded = fold_expr(arm.condition, ctx.table, ctx.env)
            if folded is False:
                ctx.emit(
                    "RML009",
                    f"{position} can never fire: its condition is "
                    f"constant false",
                    assign.line,
                    assign.column,
                )
            elif folded is True and i + 1 < len(value.arms):
                always_taken = True


# ----------------------------------------------------------------------
# RML011 / RML012 / RML013: cone-of-influence coverage smells
# ----------------------------------------------------------------------


def rule_observed_unmentioned(ctx: LintContext) -> None:
    """RML011: an OBSERVED signal outside every property's cone — its
    Definition-1 coverage is structurally zero."""
    if not ctx.module.specs:
        return
    cone = union_property_cone(ctx.module, ctx.table, ctx.graph)
    for observed in ctx.module.observed:
        name = ctx.table.resolve(observed)
        if name is None or name in cone:
            continue
        line, column = ctx.locate("OBSERVED", observed)
        ctx.emit(
            "RML011",
            f"observed signal {observed!r} appears in no property's cone "
            f"of influence: its coverage is structurally zero",
            line,
            column,
            about=name,
        )


def rule_latch_outside_coi(ctx: LintContext) -> None:
    """RML012: a latch no property can see, even indirectly."""
    if not ctx.module.specs:
        return
    cone = union_property_cone(ctx.module, ctx.table, ctx.graph)
    for symbol in ctx.table.symbols.values():
        if symbol.kind != KIND_LATCH or symbol.name in cone:
            continue
        if "RML008" in ctx.flagged.get(symbol.name, set()):
            continue  # write-only already says it sharper
        ctx.emit(
            "RML012",
            f"latch {symbol.name!r} is outside every property's cone of "
            f"influence: no SPEC can depend on it",
            symbol.line,
            symbol.column,
            about=symbol.name,
        )


def rule_latch_unobservable(ctx: LintContext) -> None:
    """RML013: a latch that cannot reach any OBSERVED signal.

    Latches feeding the ``DONTCARE`` predicate are exempt: the don't-care
    set shapes the coverage metric itself, so they are not dead weight
    even when no observed signal depends on them.
    """
    if not ctx.module.observed:
        return
    cone = observed_cone(ctx.module, ctx.table, ctx.graph)
    if ctx.module.dont_care is not None:
        seeds = [
            name
            for name in (
                ctx.table.resolve(atom)
                for atom in ctx.module.dont_care.atoms()
            )
            if name is not None
        ]
        cone = cone | ctx.graph.closure(seeds)
    for symbol in ctx.table.symbols.values():
        if symbol.kind != KIND_LATCH or symbol.name in cone:
            continue
        if ctx.flagged.get(symbol.name, set()) & {"RML008", "RML012"}:
            continue
        ctx.emit(
            "RML013",
            f"latch {symbol.name!r} cannot influence any OBSERVED signal: "
            f"no coverage metric can ever charge it",
            symbol.line,
            symbol.column,
            about=symbol.name,
        )


# ----------------------------------------------------------------------
# RML014 / RML015: constant propagation smells
# ----------------------------------------------------------------------


def rule_constant_latch(ctx: LintContext) -> None:
    """RML014: latches provably stuck at their reset value."""
    for latch in sorted(ctx.env):
        value = ctx.env[latch]
        assign = ctx.next_of(latch)
        rendered = int(value)
        ctx.emit(
            "RML014",
            f"latch {latch!r} provably holds its reset value "
            f"({rendered}) forever: its next-state logic can never "
            f"change it",
            assign.line if assign else 0,
            assign.column if assign else 0,
            about=latch,
        )


def rule_vacuous_antecedent(ctx: LintContext) -> None:
    """RML015: implications whose antecedent is constant-false."""
    for spec in ctx.module.specs:
        reported: Set[str] = set()

        def report(antecedent: Expr) -> None:
            rendered = str(antecedent)
            if rendered in reported:
                return
            reported.add(rendered)
            ctx.emit(
                "RML015",
                f"antecedent '{rendered}' is constant false: the "
                f"implication holds vacuously",
                spec.line,
                spec.column,
            )

        for node in _walk_ctl(spec.formula):
            if isinstance(node, CtlImplies) and is_propositional(node.lhs):
                antecedent = to_expr(node.lhs)
                if fold_expr(antecedent, ctx.table, ctx.env) is False:
                    report(antecedent)
            elif isinstance(node, Atom):
                for sub in _walk_exprs(node.expr):
                    if isinstance(sub, Implies):
                        if fold_expr(sub.lhs, ctx.table, ctx.env) is False:
                            report(sub.lhs)


# ----------------------------------------------------------------------
# RML016: missing init
# ----------------------------------------------------------------------


def rule_missing_init(ctx: LintContext) -> None:
    """RML016: latches silently defaulting to reset value 0."""
    initialised = {init.target for init in ctx.module.inits}
    for symbol in ctx.table.symbols.values():
        if symbol.kind != KIND_LATCH or symbol.name in initialised:
            continue
        ctx.emit(
            "RML016",
            f"latch {symbol.name!r} has no init() and defaults to 0; "
            f"declare the reset value explicitly",
            symbol.line,
            symbol.column,
            about=symbol.name,
        )


#: All rules in execution order.  Order matters only for the ``flagged``
#: noise suppression (RML008 before RML012 before RML013); the report
#: itself is re-sorted by location.
ALL_RULES = (
    rule_unknown_name,
    rule_bit_collision,
    rule_define_cycle,
    rule_case_exhaustive,
    rule_width_mismatch,
    rule_constant_compare,
    rule_unused_signal,
    rule_write_only_latch,
    rule_case_arms,
    rule_observed_unmentioned,
    rule_latch_outside_coi,
    rule_latch_unobservable,
    rule_constant_latch,
    rule_vacuous_antecedent,
    rule_missing_init,
)


def run_rules(
    module: Module,
    filename: str,
    text: Optional[str] = None,
) -> List[Diagnostic]:
    """Run the full battery over one parsed module."""
    table = SymbolTable(module)
    graph = build_deps(module, table)
    env = constant_env(module, table)
    ctx = LintContext(
        module=module,
        table=table,
        graph=graph,
        env=env,
        filename=filename,
        text=text,
    )
    for rule in ALL_RULES:
        rule(ctx)
    return ctx.diagnostics
