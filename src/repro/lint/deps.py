"""Static dependency graph over a module's declared signals.

Edges point from a signal to the signals its defining logic *reads*:
a latch depends on every atom of its next-state assignment (conditions
and values), a DEFINE on every atom of its body, and an input on
nothing.  Atoms written against implicit word bits are normalised to
their parent word, so the graph — and every cone-of-influence closure
computed from it — lives entirely at the declared-signal level.

Latches break combinational timing (``next()`` reads *current* values),
so the only cycles that matter are DEFINE → DEFINE ones; those are real
combinational loops and are reported as errors by the rules.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

from ..lang.ast import Case, Module, WordConst, WordOffset, WordRef, WordSum
from .symbols import KIND_DEFINE, SymbolTable

__all__ = ["DepGraph", "build_deps", "value_atoms", "define_cycles"]


def value_atoms(value) -> Tuple[str, ...]:
    """Every signal name a next-state/DEFINE value reads, unresolved.

    Handles the full value grammar: plain expressions, ``case`` blocks
    (conditions and arm values), and the word RHS nodes.
    """
    names: List[str] = []
    if isinstance(value, Case):
        for arm in value.arms:
            names.extend(arm.condition.atoms())
            names.extend(value_atoms(arm.value))
    elif isinstance(value, WordConst):
        pass
    elif isinstance(value, (WordRef, WordOffset)):
        names.append(value.name)
    elif isinstance(value, WordSum):
        names.append(value.lhs)
        names.append(value.rhs)
    else:  # plain Expr
        names.extend(value.atoms())
    return tuple(names)


class DepGraph:
    """Signal-level dependency graph with closure and reverse queries."""

    def __init__(self, deps: Dict[str, FrozenSet[str]]):
        #: signal -> the *declared* signals its logic reads.
        self.deps = deps

    def readers(self) -> Dict[str, Set[str]]:
        """Inverse edges: signal -> the signals whose logic reads it."""
        out: Dict[str, Set[str]] = {name: set() for name in self.deps}
        for reader, read in self.deps.items():
            for name in read:
                out.setdefault(name, set()).add(reader)
        return out

    def closure(self, seeds: Iterable[str]) -> FrozenSet[str]:
        """Transitive dependency closure (the cone of influence of
        ``seeds``): everything the seeds read, directly or through any
        chain of defines and latches."""
        seen: Set[str] = set()
        stack = [s for s in seeds if s in self.deps]
        while stack:
            name = stack.pop()
            if name in seen:
                continue
            seen.add(name)
            stack.extend(n for n in self.deps.get(name, ()) if n not in seen)
        return frozenset(seen)


def build_deps(module: Module, table: SymbolTable) -> DepGraph:
    """The dependency graph of ``module``.

    Unknown atoms (RML001 elsewhere) are silently dropped here so every
    downstream analysis operates on a well-formed graph.
    """
    deps: Dict[str, FrozenSet[str]] = {
        name: frozenset() for name in table.symbols
    }
    for assign in module.nexts:
        resolved = _resolve_all(table, value_atoms(assign.value))
        deps[assign.target] = frozenset(resolved)
    for define in module.defines:
        resolved = _resolve_all(table, value_atoms(define.value))
        deps[define.name] = frozenset(resolved)
    return DepGraph(deps)


def _resolve_all(table: SymbolTable, atoms: Sequence[str]) -> Set[str]:
    out: Set[str] = set()
    for atom in atoms:
        name = table.resolve(atom)
        if name is not None:
            out.add(name)
    return out


def define_cycles(graph: DepGraph, table: SymbolTable) -> List[List[str]]:
    """Combinational cycles: SCCs of size > 1 (or self-loops) in the
    subgraph restricted to DEFINE signals, each as a sorted name list."""
    defines = {
        name
        for name, symbol in table.symbols.items()
        if symbol.kind == KIND_DEFINE
    }
    edges = {
        name: sorted(graph.deps.get(name, frozenset()) & defines)
        for name in sorted(defines)
    }

    # Tarjan's SCC, iteratively (the repo-wide no-deep-recursion rule
    # applies to analysis code too).
    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    counter = [0]
    sccs: List[List[str]] = []

    for root in edges:
        if root in index:
            continue
        work: List[Tuple[str, int]] = [(root, 0)]
        while work:
            node, edge_i = work.pop()
            if edge_i == 0:
                index[node] = lowlink[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            for i in range(edge_i, len(edges[node])):
                succ = edges[node][i]
                if succ not in index:
                    work.append((node, i + 1))
                    work.append((succ, 0))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            if lowlink[node] == index[node]:
                component: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1 or node in edges[node]:
                    sccs.append(sorted(component))
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    sccs.sort()
    return sccs
