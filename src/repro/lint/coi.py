"""Cone-of-influence analysis linking latches, observed signals, properties.

The paper's coverage metric (Definition 1) perturbs *observed* signals
and asks whether any *property* notices.  Two purely structural facts
bound that metric before any BDD is built:

* a latch outside every property's cone of influence can never change a
  verdict — its Definition-1 contribution is exactly zero; and
* a latch that cannot reach any observed signal through the dependency
  graph cannot be covered no matter which properties are written.

Both cones are dependency closures over :class:`~repro.lint.deps.DepGraph`,
seeded from property atoms and the ``OBSERVED`` list respectively.
"""

from __future__ import annotations

from typing import FrozenSet, List, Set

from ..ctl.ast import formula_atoms
from ..lang.ast import Module
from .deps import DepGraph
from .symbols import SymbolTable

__all__ = [
    "spec_seeds",
    "property_cones",
    "union_property_cone",
    "observed_cone",
]


def spec_seeds(module: Module, table: SymbolTable) -> List[FrozenSet[str]]:
    """Per-SPEC sets of declared signals the property mentions.

    Atoms written against implicit word bits resolve to their parent
    word; undeclared atoms (RML001 elsewhere) are dropped.
    """
    seeds: List[FrozenSet[str]] = []
    for spec in module.specs:
        resolved: Set[str] = set()
        for atom in formula_atoms(spec.formula):
            name = table.resolve(atom)
            if name is not None:
                resolved.add(name)
        seeds.append(frozenset(resolved))
    return seeds


def property_cones(
    module: Module, table: SymbolTable, graph: DepGraph
) -> List[FrozenSet[str]]:
    """The cone of influence of each SPEC, in declaration order."""
    return [graph.closure(seeds) for seeds in spec_seeds(module, table)]


def union_property_cone(
    module: Module, table: SymbolTable, graph: DepGraph
) -> FrozenSet[str]:
    """Everything at least one property can see."""
    union: Set[str] = set()
    for cone in property_cones(module, table, graph):
        union |= cone
    return frozenset(union)


def observed_cone(
    module: Module, table: SymbolTable, graph: DepGraph
) -> FrozenSet[str]:
    """Everything the ``OBSERVED`` list transitively depends on."""
    seeds = [
        name
        for name in (table.resolve(obs) for obs in module.observed)
        if name is not None
    ]
    return graph.closure(seeds)
