"""Three-valued constant folding over expressions and word values.

The folder evaluates an :class:`~repro.expr.ast.Expr` against an *env*
of facts known to hold in every reachable state (``name -> bool`` for
boolean latches, ``name -> int`` for word latches), returning ``True``,
``False``, or ``None`` for "not statically determined".  DEFINE bodies
are expanded transparently (with a cycle guard), and word comparisons
are width-aware: ``count <= 15`` on a 4-bit ``count`` folds to ``True``
no matter what the latch does, which is exactly the shape RML006 flags.

``constant_env`` computes the env itself as a *greatest* fixpoint:
start by optimistically assuming every latch holds its reset value
forever, then strike any latch whose next-state logic can leave that
value under the surviving assumptions.  At the fixpoint the facts are
mutually consistent — the initial state satisfies them and every
transition preserves them — so they are sound for all reachable states,
and mutually-reinforcing constant latches (``next(a) := b`` with
``next(b) := a``, both reset to 0) are caught.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional, Tuple, Union

from ..expr.ast import (
    And,
    Const,
    Expr,
    Iff,
    Implies,
    Not,
    Or,
    Var,
    WordCmp,
    Xor,
)
from ..lang.ast import Case, Module, WordConst, WordOffset, WordRef, WordSum
from .symbols import KIND_DEFINE, KIND_LATCH, SymbolTable

__all__ = [
    "ConstEnv",
    "fold_expr",
    "fold_word",
    "cmp_constant_by_width",
    "constant_env",
]

#: Facts known in every reachable state: bool for boolean signals,
#: int for word registers.
ConstEnv = Dict[str, Union[bool, int]]


def cmp_constant_by_width(
    op: str, rhs: int, width: int
) -> Optional[bool]:
    """The comparison's outcome if ``width`` alone decides it.

    An unsigned ``width``-bit word ranges over ``0 .. 2**width - 1``;
    comparisons against literals outside (or at the edge of) that range
    are constant regardless of the register's behaviour.
    """
    top = (1 << width) - 1
    if op == "==":
        return False if rhs > top else None
    if op == "!=":
        return True if rhs > top else None
    if op == "<":
        if rhs == 0:
            return False
        return True if rhs > top else None
    if op == "<=":
        return True if rhs >= top else None
    if op == ">":
        return False if rhs >= top else None
    if op == ">=":
        if rhs == 0:
            return True
        return False if rhs > top else None
    return None


def _apply_cmp(op: str, lhs: int, rhs: int) -> Optional[bool]:
    if op == "==":
        return lhs == rhs
    if op == "!=":
        return lhs != rhs
    if op == "<":
        return lhs < rhs
    if op == "<=":
        return lhs <= rhs
    if op == ">":
        return lhs > rhs
    if op == ">=":
        return lhs >= rhs
    return None


def fold_word(
    name: str,
    table: SymbolTable,
    env: ConstEnv,
    _guard: FrozenSet[str] = frozenset(),
) -> Optional[int]:
    """The constant value of word signal ``name`` under ``env``, if any."""
    if name in _guard:
        return None
    if name in env:
        return int(env[name])
    symbol = table.symbols.get(name)
    if symbol is None or symbol.kind != KIND_DEFINE:
        return None
    define = next(
        (d for d in table.module.defines if d.name == name), None
    )
    if define is None or not isinstance(define.value, WordSum):
        return None
    guard = _guard | {name}
    lhs = fold_word(define.value.lhs, table, env, guard)
    rhs = fold_word(define.value.rhs, table, env, guard)
    if lhs is None or rhs is None:
        return None
    return lhs + rhs  # word sums widen by one bit: no wraparound


def fold_expr(
    expr: Expr,
    table: SymbolTable,
    env: ConstEnv,
    _guard: FrozenSet[str] = frozenset(),
) -> Optional[bool]:
    """Three-valued evaluation of ``expr`` under ``env``."""
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, Var):
        return _fold_name(expr.name, table, env, _guard)
    if isinstance(expr, Not):
        inner = fold_expr(expr.operand, table, env, _guard)
        return None if inner is None else not inner
    if isinstance(expr, And):
        result: Optional[bool] = True
        for arg in expr.args:
            value = fold_expr(arg, table, env, _guard)
            if value is False:
                return False
            if value is None:
                result = None
        return result
    if isinstance(expr, Or):
        result = False
        for arg in expr.args:
            value = fold_expr(arg, table, env, _guard)
            if value is True:
                return True
            if value is None:
                result = None
        return result
    if isinstance(expr, Xor):
        lhs = fold_expr(expr.lhs, table, env, _guard)
        rhs = fold_expr(expr.rhs, table, env, _guard)
        if lhs is None or rhs is None:
            return None
        return lhs != rhs
    if isinstance(expr, Iff):
        lhs = fold_expr(expr.lhs, table, env, _guard)
        rhs = fold_expr(expr.rhs, table, env, _guard)
        if lhs is None or rhs is None:
            return None
        return lhs == rhs
    if isinstance(expr, Implies):
        lhs = fold_expr(expr.lhs, table, env, _guard)
        if lhs is False:
            return True
        rhs = fold_expr(expr.rhs, table, env, _guard)
        if lhs is True:
            return rhs
        return True if rhs is True else None
    if isinstance(expr, WordCmp):
        return _fold_cmp(expr, table, env, _guard)
    return None


def _fold_name(
    name: str,
    table: SymbolTable,
    env: ConstEnv,
    guard: FrozenSet[str],
) -> Optional[bool]:
    if name in guard:
        return None
    if name in env and isinstance(env[name], bool):
        return bool(env[name])
    symbol = table.symbols.get(name)
    if symbol is not None and symbol.kind == KIND_DEFINE and not symbol.is_word:
        define = next(
            (d for d in table.module.defines if d.name == name), None
        )
        if define is not None and isinstance(define.value, Expr):
            return fold_expr(define.value, table, env, guard | {name})
        return None
    # Implicit bit of a constant word: bit i of its parent's value.
    owner = table.bit_owner.get(name)
    if owner is not None and name not in table.symbols:
        value = fold_word(owner, table, env, guard)
        if value is not None:
            bit = int(name[len(owner):])
            return bool((value >> bit) & 1)
    return None


def _fold_cmp(
    expr: WordCmp,
    table: SymbolTable,
    env: ConstEnv,
    guard: FrozenSet[str],
) -> Optional[bool]:
    width = table.width_of(expr.lhs)
    lhs_value = fold_word(expr.lhs, table, env, guard)
    if lhs_value is None and width == 1:
        as_bool = _fold_name(expr.lhs, table, env, guard)
        if as_bool is not None:
            lhs_value = int(as_bool)
    if isinstance(expr.rhs, str):
        rhs_value = fold_word(expr.rhs, table, env, guard)
        if lhs_value is not None and rhs_value is not None:
            return _apply_cmp(expr.op, lhs_value, rhs_value)
        return None
    if lhs_value is not None:
        return _apply_cmp(expr.op, lhs_value, int(expr.rhs))
    if width is not None:
        return cmp_constant_by_width(expr.op, int(expr.rhs), width)
    return None


def _init_value(module: Module, name: str, is_word: bool) -> Union[bool, int]:
    init = next((i for i in module.inits if i.target == name), None)
    if is_word:
        return int(init.value) if init is not None else 0
    return bool(init.value) if init is not None else False


def _latch_stays_constant(
    assign_value,
    latch: str,
    table: SymbolTable,
    env: ConstEnv,
) -> bool:
    """True when, under ``env``, the latch's next value always folds to
    the value ``env`` assumes for it (self-holds fold via ``env[latch]``
    itself, so they need no special case)."""
    assumed = env[latch]
    arms: Tuple = (
        tuple((arm.condition, arm.value) for arm in assign_value.arms)
        if isinstance(assign_value, Case)
        else ((Const(True), assign_value),)
    )
    for condition, value in arms:
        if fold_expr(condition, table, env) is False:
            continue  # statically dead arm cannot fire
        if isinstance(assumed, bool):
            if not isinstance(value, Expr):
                return False
            if fold_expr(value, table, env) is not assumed:
                return False
        else:
            if isinstance(value, WordConst):
                folded: Optional[int] = value.value
            elif isinstance(value, WordRef):
                folded = fold_word(value.name, table, env)
            elif isinstance(value, WordOffset):
                base = fold_word(value.name, table, env)
                width = table.width_of(value.name) or 1
                folded = (
                    (base + value.offset) % (1 << width)
                    if base is not None
                    else None
                )
            else:
                folded = None
            if folded != assumed:
                return False
    return True


def constant_env(module: Module, table: SymbolTable) -> ConstEnv:
    """Latches provably stuck at their reset value, as a fact env.

    Greatest-fixpoint refinement: assume every latch constant at init,
    then repeatedly strike latches whose next-state logic can escape
    under the surviving assumptions, until stable.
    """
    values = {a.target: a.value for a in module.nexts}
    env: ConstEnv = {}
    for symbol in table.symbols.values():
        if symbol.kind == KIND_LATCH:
            env[symbol.name] = _init_value(
                module, symbol.name, symbol.is_word
            )
    changed = True
    while changed:
        changed = False
        for latch in sorted(env):
            if not _latch_stays_constant(values[latch], latch, table, env):
                del env[latch]
                changed = True
    return env
