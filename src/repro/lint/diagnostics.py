"""Diagnostic codes, severities, and the lint report container.

Every analysis in :mod:`repro.lint` emits :class:`Diagnostic` records with
a *stable* code (``RML000`` … ``RML016``): codes are append-only API — a
code is never renumbered or reused, so waiver pragmas, golden tests, and
downstream tooling can rely on them across releases.  The full catalogue
with rationale lives in ``docs/linting.md``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = [
    "Severity",
    "Diagnostic",
    "CodeInfo",
    "DIAGNOSTIC_CODES",
    "CODE_INDEX",
    "LintReport",
    "LINT_SCHEMA_ID",
]

#: Schema identifier of the JSON document :meth:`LintReport.to_json` emits.
LINT_SCHEMA_ID = "repro-lint/v1"


class Severity(enum.IntEnum):
    """Diagnostic severity, ordered so thresholds compare naturally."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    def __str__(self) -> str:
        return self.name.lower()

    @classmethod
    def from_name(cls, name: str) -> "Severity":
        """Parse ``"info"`` / ``"warning"`` / ``"error"`` (case-insensitive)."""
        try:
            return cls[name.upper()]
        except KeyError:
            valid = ", ".join(s.name.lower() for s in cls)
            raise ValueError(
                f"unknown severity {name!r} (valid: {valid})"
            ) from None


@dataclass(frozen=True)
class CodeInfo:
    """One registered diagnostic code: identity, default severity, summary."""

    code: str
    name: str
    severity: Severity
    summary: str


#: The shipped catalogue, in code order.  Append-only: never renumber.
DIAGNOSTIC_CODES: Tuple[CodeInfo, ...] = (
    CodeInfo("RML000", "parse-error", Severity.ERROR,
             "the module source does not parse"),
    CodeInfo("RML001", "unknown-name", Severity.ERROR,
             "an expression, property, or OBSERVED list references an "
             "undeclared signal"),
    CodeInfo("RML002", "bit-collision", Severity.ERROR,
             "a declaration collides with the implicit bit name of a word"),
    CodeInfo("RML003", "define-cycle", Severity.ERROR,
             "combinational cycle through DEFINE signals"),
    CodeInfo("RML004", "case-not-exhaustive", Severity.ERROR,
             "the last case arm's condition is not the constant TRUE"),
    CodeInfo("RML005", "width-mismatch", Severity.ERROR,
             "a word value does not fit its target register"),
    CodeInfo("RML006", "constant-compare", Severity.WARNING,
             "a word comparison is constant for every value the word's "
             "width admits"),
    CodeInfo("RML007", "unused-signal", Severity.WARNING,
             "a declared input or DEFINE is never read"),
    CodeInfo("RML008", "write-only-latch", Severity.WARNING,
             "a latch is read only by its own next-state logic and is "
             "not observed"),
    CodeInfo("RML009", "unreachable-arm", Severity.WARNING,
             "a case arm can never be selected"),
    CodeInfo("RML010", "overlapping-arm", Severity.WARNING,
             "a case arm repeats an earlier arm's condition"),
    CodeInfo("RML011", "observed-unmentioned", Severity.WARNING,
             "an OBSERVED signal appears in no property — its coverage "
             "(Definition 1) is structurally zero"),
    CodeInfo("RML012", "latch-outside-coi", Severity.WARNING,
             "a latch lies outside every property's cone of influence"),
    CodeInfo("RML013", "latch-unobservable", Severity.WARNING,
             "a latch cannot reach any OBSERVED signal through the "
             "dependency graph"),
    CodeInfo("RML014", "constant-latch", Severity.WARNING,
             "a latch provably holds its reset value forever"),
    CodeInfo("RML015", "vacuous-antecedent", Severity.WARNING,
             "an implication's antecedent is structurally constant-false"),
    CodeInfo("RML016", "missing-init", Severity.INFO,
             "a latch has no explicit init() and defaults to 0"),
)

#: code -> :class:`CodeInfo`, for message construction and validation.
CODE_INDEX: Dict[str, CodeInfo] = {info.code: info for info in DIAGNOSTIC_CODES}


@dataclass(frozen=True)
class Diagnostic:
    """One finding: a coded message anchored to a source location.

    ``line``/``column`` are 1-based and 0 when the finding has no usable
    anchor (module-level smells on synthesised modules); renderers print
    such locations as just the file name.
    """

    code: str
    message: str
    file: str = "<module>"
    line: int = 0
    column: int = 0

    def __post_init__(self) -> None:
        if self.code not in CODE_INDEX:
            raise ValueError(f"unregistered diagnostic code {self.code!r}")

    @property
    def info(self) -> CodeInfo:
        return CODE_INDEX[self.code]

    @property
    def severity(self) -> Severity:
        return self.info.severity

    @property
    def name(self) -> str:
        return self.info.name

    def location(self) -> str:
        """``file:line:col`` (or just ``file`` without an anchor)."""
        if self.line:
            return f"{self.file}:{self.line}:{self.column}"
        return self.file

    def format(self) -> str:
        """The canonical one-line rendering."""
        return (
            f"{self.location()}: {self.severity}[{self.code}] {self.message}"
        )

    def sort_key(self) -> Tuple:
        return (self.file, self.line, self.column, self.code, self.message)

    def to_json(self) -> Dict:
        return {
            "code": self.code,
            "name": self.name,
            "severity": str(self.severity),
            "file": self.file,
            "line": self.line,
            "column": self.column,
            "message": self.message,
        }


@dataclass
class LintReport:
    """The outcome of linting one or more modules.

    ``diagnostics`` is sorted by (file, line, column, code) so reports are
    deterministic regardless of rule execution order; ``suppressed``
    counts findings waived by ``-- repro-lint: allow CODE`` pragmas.
    """

    diagnostics: List[Diagnostic] = field(default_factory=list)
    files: List[str] = field(default_factory=list)
    suppressed: int = 0

    def __post_init__(self) -> None:
        self.diagnostics = sorted(self.diagnostics, key=Diagnostic.sort_key)

    def count(self, severity: Severity) -> int:
        return sum(1 for d in self.diagnostics if d.severity == severity)

    @property
    def errors(self) -> int:
        return self.count(Severity.ERROR)

    @property
    def warnings(self) -> int:
        return self.count(Severity.WARNING)

    @property
    def infos(self) -> int:
        return self.count(Severity.INFO)

    @property
    def clean(self) -> bool:
        """No findings at any severity (suppressed ones don't count)."""
        return not self.diagnostics

    def max_severity(self) -> Optional[Severity]:
        if not self.diagnostics:
            return None
        return max(d.severity for d in self.diagnostics)

    def at_or_above(self, threshold: Severity) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity >= threshold]

    def codes(self) -> Tuple[str, ...]:
        """The codes present, sorted, with multiplicity."""
        return tuple(sorted(d.code for d in self.diagnostics))

    def merge(self, other: "LintReport") -> "LintReport":
        """A combined report over both inputs' files and findings."""
        return LintReport(
            diagnostics=self.diagnostics + other.diagnostics,
            files=self.files + other.files,
            suppressed=self.suppressed + other.suppressed,
        )

    def to_json(self) -> Dict:
        """The ``repro-lint/v1`` document (see ``docs/linting.md``)."""
        from .._version import __version__

        return {
            "schema": LINT_SCHEMA_ID,
            "generator": f"repro {__version__}",
            "files": list(self.files),
            "diagnostics": [d.to_json() for d in self.diagnostics],
            "totals": {
                "files": len(self.files),
                "diagnostics": len(self.diagnostics),
                "errors": self.errors,
                "warnings": self.warnings,
                "infos": self.infos,
                "suppressed": self.suppressed,
            },
        }
