"""Symbol table for one parsed module: declarations, kinds, word bits.

Mirrors the name universe the elaborator builds (top-level variables and
defines, plus the implicit per-bit names of words and word-sum defines)
without importing any engine machinery: everything here is derived from
the :class:`~repro.lang.ast.Module` AST alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..lang.ast import Module, WordSum

__all__ = ["Symbol", "SymbolTable", "KIND_INPUT", "KIND_LATCH", "KIND_DEFINE"]

KIND_INPUT = "input"
KIND_LATCH = "latch"
KIND_DEFINE = "define"


@dataclass(frozen=True)
class Symbol:
    """One top-level declared name."""

    name: str
    kind: str  # KIND_INPUT | KIND_LATCH | KIND_DEFINE
    width: Optional[int]  # None for booleans; bit count for words
    line: int = 0
    column: int = 0

    @property
    def is_word(self) -> bool:
        return self.width is not None


class SymbolTable:
    """Declared names of a module, with bit-name resolution.

    ``symbols`` holds every top-level name; ``word_bits`` maps each word
    (variable or word-sum define) to its LSB-first implicit bit names;
    ``bit_owner`` inverts that so property atoms written against raw bits
    (``count0``) resolve back to their word.
    """

    def __init__(self, module: Module):
        self.module = module
        self.symbols: Dict[str, Symbol] = {}
        self.word_bits: Dict[str, List[str]] = {}
        self.bit_owner: Dict[str, str] = {}

        assigned = {a.target for a in module.nexts}
        for var in module.vars:
            kind = KIND_LATCH if var.name in assigned else KIND_INPUT
            self.symbols[var.name] = Symbol(
                var.name, kind, var.width, var.line, var.column
            )
            if var.is_word:
                self.word_bits[var.name] = [
                    f"{var.name}{i}" for i in range(var.width or 1)
                ]
        for define in module.defines:
            width: Optional[int] = None
            if isinstance(define.value, WordSum):
                lhs = self.word_bits.get(define.value.lhs)
                rhs = self.word_bits.get(define.value.rhs)
                # Unknown/non-word operands are reported by the rules; the
                # table still records the define so later references resolve.
                width = max(len(lhs or [1]), len(rhs or [1])) + 1
                self.word_bits[define.name] = [
                    f"{define.name}{i}" for i in range(width)
                ]
            self.symbols[define.name] = Symbol(
                define.name, KIND_DEFINE, width, define.line, define.column
            )
        for word, bits in self.word_bits.items():
            for bit in bits:
                self.bit_owner.setdefault(bit, word)

    # ------------------------------------------------------------------

    def resolve(self, atom: str) -> Optional[str]:
        """The top-level name an atom denotes, or ``None`` if undeclared.

        A direct declaration resolves to itself; an implicit bit name
        (``count0``) resolves to its word; anything else is unknown.
        """
        if atom in self.symbols:
            return atom
        owner = self.bit_owner.get(atom)
        if owner is not None and atom not in self.symbols:
            return owner
        return None

    def width_of(self, name: str) -> Optional[int]:
        """Declared width of ``name`` (1 for booleans), or ``None`` if
        unknown.  Implicit bit names have width 1."""
        symbol = self.symbols.get(name)
        if symbol is not None:
            return symbol.width if symbol.is_word else 1
        if name in self.bit_owner:
            return 1
        return None

    def latches(self) -> Tuple[Symbol, ...]:
        return tuple(
            s for s in self.symbols.values() if s.kind == KIND_LATCH
        )

    def inputs(self) -> Tuple[Symbol, ...]:
        return tuple(
            s for s in self.symbols.values() if s.kind == KIND_INPUT
        )

    def defines(self) -> Tuple[Symbol, ...]:
        return tuple(
            s for s in self.symbols.values() if s.kind == KIND_DEFINE
        )
