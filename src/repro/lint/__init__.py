"""Static analysis (lint) over ``.rml`` modules and their CTL properties.

The paper's coverage metric exists because verification can "look done"
while large parts of a design were never exercised; this package finds
the *structural* causes of that gap before any BDD is ever built.  It is
a battery of engine-free analyses over the parsed ASTs of
:mod:`repro.lang` and :mod:`repro.ctl` — symbol table and use-def,
static dependency graph with combinational-cycle detection,
cone-of-influence analysis linking latches to observed signals to
property atoms, constant-latch propagation, case-arm reachability, and
structural vacuity smells — each reported as a stable-coded
:class:`Diagnostic` with a ``file:line:col`` location.

This package is strictly read-only over ASTs: importing it must not load
:mod:`repro.bdd` (enforced by test), so ``repro lint`` stays cheap enough
to run as a pre-filter on every model a service ever receives.

Quickstart::

    >>> from repro.lint import lint_source
    >>> report = lint_source(
    ...     "MODULE m\\n"
    ...     "VAR x : boolean; y : boolean; z : boolean;\\n"
    ...     "ASSIGN init(x) := 0; next(x) := !x;\\n"
    ...     "ASSIGN init(y) := 0; next(y) := y & x;\\n"
    ...     "SPEC AG (x | y);\\n"
    ...     "OBSERVED x, y, z;\\n",
    ...     filename="m.rml",
    ... )
    >>> [d.code for d in report.diagnostics]
    ['RML014', 'RML011']
    >>> print(report.diagnostics[1].format())
    m.rml:6:16: warning[RML011] observed signal 'z' appears in no \
property's cone of influence: its coverage is structurally zero
"""

from .diagnostics import (
    CODE_INDEX,
    DIAGNOSTIC_CODES,
    LINT_SCHEMA_ID,
    CodeInfo,
    Diagnostic,
    LintReport,
    Severity,
)
from .render import render_json, render_text
from .runner import lint_module, lint_path, lint_source

__all__ = [
    "CODE_INDEX",
    "DIAGNOSTIC_CODES",
    "LINT_SCHEMA_ID",
    "CodeInfo",
    "Diagnostic",
    "LintReport",
    "Severity",
    "lint_module",
    "lint_path",
    "lint_source",
    "render_json",
    "render_text",
]
