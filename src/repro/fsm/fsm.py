"""The symbolic Kripke structure — Definition 1 of the paper.

An :class:`FSM` is the 4-tuple ``<S, TM, P, SI>``:

* ``S`` — the state space: all valuations of the *state variables*.  As in
  SMV, free circuit inputs are folded into the state (each input becomes a
  state variable with an unconstrained next value), so the paper's formulas
  over inputs like ``stall``/``reset`` are plain state predicates.
* ``TM`` — the transition relation, a BDD over current and next variables.
* ``P`` — the signals: named atomic propositions, each a BDD over the
  current variables (latches/inputs name themselves; ``define``d outputs
  are arbitrary functions).
* ``SI`` — the initial state set.

Current and next copies of each variable are interleaved in the BDD order
(``v0, v0#next, v1, v1#next, ...``), the standard choice that keeps
transition relations small and makes current<->next renaming a fast
monotone rebuild.

Construction goes through :class:`~repro.fsm.builder.CircuitBuilder` (for
circuits) or :func:`~repro.fsm.explicit.ExplicitGraph.to_fsm` (for explicit
state graphs); this class only assumes a relation, not functional
next-state logic.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence

from ..bdd import BDDManager, Function
from ..errors import ModelError
from ..expr.ast import (
    And as EAnd,
    Const,
    Expr,
    Iff as EIff,
    Implies as EImplies,
    Not as ENot,
    Or as EOr,
    Var,
    WordCmp,
    Xor as EXor,
)
from ..expr.bitvector import WordTable, resolve_words
from ..obs.telemetry import NULL_TELEMETRY
from .partition import (
    TRANS_MONO,
    TRANS_PARTITIONED,
    TransitionPartition,
    validate_trans_mode,
)

__all__ = ["FSM", "NEXT_SUFFIX"]

#: Suffix appended to a state variable name to name its next-state copy.
NEXT_SUFFIX = "#next"


class FSM:
    """A finite state machine in symbolic (BDD) representation.

    Parameters
    ----------
    manager:
        The BDD manager holding every function of this machine.
    name:
        Human-readable machine name (used in reports).
    state_vars:
        Names of the state variables in declaration order.  For each name
        ``v`` the manager must have variables ``v`` and ``v#next``.
    inputs:
        The subset of ``state_vars`` that are free inputs (unconstrained
        next value).  Informational — the transition relation already
        encodes this.
    transition:
        The monolithic transition relation over current and next variables.
        May be omitted when ``partition`` is given (partitioned mode never
        needs it; it is conjoined lazily on first access).
    partition:
        Optional :class:`~repro.fsm.partition.TransitionPartition` — the
        per-latch relation conjuncts with early-quantification schedules.
        Required for ``trans_mode="partitioned"``.
    trans_mode:
        How images are executed: ``"partitioned"`` (the default when a
        partition is available) runs the scheduled ``and_exists`` chain;
        ``"mono"`` uses the single relation BDD.
    init:
        The initial state set over current variables.
    signals:
        Atomic propositions: name -> BDD over current variables.  Must
        include every state variable under its own name.
    signal_exprs:
        Optional expression-level definitions of the signals (needed for
        explicit-state enumeration of functional circuits).
    words:
        Bit-vector table: word name -> LSB-first bit signal names.
    fairness:
        Fairness constraints as state sets; a fair path satisfies each one
        infinitely often (paper Section 4.3).
    latch_next_exprs:
        Optional next-state expression for every non-input state variable
        (enables explicit enumeration; relation-built FSMs leave it None).
    """

    #: The telemetry this machine reports phase spans to.  A class-level
    #: default so every FSM (including hand-built test fixtures) has one;
    #: :class:`~repro.analysis.Analysis` installs a live recorder when the
    #: config asks for it.  Never affects results — spans only read state.
    telemetry = NULL_TELEMETRY

    def __init__(
        self,
        manager: BDDManager,
        name: str,
        state_vars: Sequence[str],
        inputs: Sequence[str],
        *,
        transition: Optional[Function] = None,
        init: Function,
        signals: Dict[str, Function],
        signal_exprs: Optional[Dict[str, Expr]] = None,
        words: Optional[WordTable] = None,
        fairness: Optional[List[Function]] = None,
        latch_next_exprs: Optional[Dict[str, Expr]] = None,
        partition: Optional[TransitionPartition] = None,
        trans_mode: Optional[str] = None,
    ):
        self.manager = manager
        self.name = name
        self.state_vars = list(state_vars)
        self.inputs = list(inputs)
        self.latches = [v for v in self.state_vars if v not in set(inputs)]
        if transition is None and partition is None:
            raise ModelError(
                f"FSM {name!r} needs a transition relation or a partition"
            )
        self._transition = transition
        self.partition = partition
        if trans_mode is None:
            trans_mode = TRANS_PARTITIONED if partition is not None else TRANS_MONO
        validate_trans_mode(trans_mode)
        if trans_mode == TRANS_PARTITIONED and partition is None:
            raise ModelError(
                f"FSM {name!r}: partitioned mode requires a partition"
            )
        self.trans_mode = trans_mode
        self.init = init
        self.signals = dict(signals)
        self.signal_exprs = dict(signal_exprs) if signal_exprs else None
        self.words: WordTable = dict(words) if words else {}
        self.fairness = list(fairness) if fairness else []
        self.latch_next_exprs = (
            dict(latch_next_exprs) if latch_next_exprs else None
        )

        self.current_ids: Dict[str, int] = {
            v: manager.var_id(v) for v in self.state_vars
        }
        self.next_ids: Dict[str, int] = {
            v: manager.var_id(v + NEXT_SUFFIX) for v in self.state_vars
        }
        self._cur_list = [self.current_ids[v] for v in self.state_vars]
        self._next_list = [self.next_ids[v] for v in self.state_vars]
        self._cur_to_next = {
            self.current_ids[v]: self.next_ids[v] for v in self.state_vars
        }
        self._next_to_cur = {
            self.next_ids[v]: self.current_ids[v] for v in self.state_vars
        }
        self._reachable: Optional[Function] = None
        self._rings: Optional[List[Function]] = None

        missing = [v for v in self.state_vars if v not in self.signals]
        if missing:
            raise ModelError(f"state variables missing from signals: {missing}")

    # ------------------------------------------------------------------
    # Constructors for common shapes
    # ------------------------------------------------------------------

    @property
    def transition(self) -> Function:
        """The monolithic transition relation.

        In partitioned mode this is conjoined lazily from the partition on
        first access — building it is exactly the cost partitioned image
        execution avoids, so hot paths never touch this property unless
        ``trans_mode == "mono"``.
        """
        if self._transition is None:
            with self.telemetry.span("build-trans", mode="mono"):
                self._transition = self.partition.monolithic()
        return self._transition

    @property
    def current_var_ids(self) -> List[int]:
        """Variable ids of the current-state variables (declaration order)."""
        return list(self._cur_list)

    @property
    def next_var_ids(self) -> List[int]:
        """Variable ids of the next-state variables (declaration order)."""
        return list(self._next_list)

    def true_set(self) -> Function:
        """The full state space as a set."""
        return Function.true(self.manager)

    def empty_set(self) -> Function:
        """The empty state set."""
        return Function.false(self.manager)

    # ------------------------------------------------------------------
    # Signal / expression symbolisation
    # ------------------------------------------------------------------

    def signal(self, name: str) -> Function:
        """The atomic proposition ``name`` as a state set."""
        try:
            return self.signals[name]
        except KeyError:
            raise ModelError(
                f"unknown signal {name!r} in FSM {self.name!r}; "
                f"known: {sorted(self.signals)[:12]}..."
            ) from None

    def symbolize(self, expr: Expr, flip: frozenset = frozenset()) -> Function:
        """Translate an expression over signals into a state-set BDD.

        ``flip`` is a set of signal names whose *labelling* is negated — the
        heart of ``depend(b)`` (Table 1): ``T(b[q -> !q])`` is
        ``symbolize(b, flip={q})``.  Flipping applies to occurrences of the
        signal in the expression, not inside other signals' definitions
        (Definition 2 changes exactly one labelling function).
        """
        lowered = resolve_words(expr, self.words, frozenset(self.signals))
        return self._symbolize_rec(lowered, flip)

    def _symbolize_rec(self, expr: Expr, flip: frozenset) -> Function:
        if isinstance(expr, Const):
            return Function.true(self.manager) if expr.value else Function.false(self.manager)
        if isinstance(expr, Var):
            base = self.signal(expr.name)
            return ~base if expr.name in flip else base
        if isinstance(expr, ENot):
            return ~self._symbolize_rec(expr.operand, flip)
        if isinstance(expr, EAnd):
            out = Function.true(self.manager)
            for arg in expr.args:
                out = out & self._symbolize_rec(arg, flip)
            return out
        if isinstance(expr, EOr):
            out = Function.false(self.manager)
            for arg in expr.args:
                out = out | self._symbolize_rec(arg, flip)
            return out
        if isinstance(expr, EXor):
            return self._symbolize_rec(expr.lhs, flip) ^ self._symbolize_rec(
                expr.rhs, flip
            )
        if isinstance(expr, EIff):
            return self._symbolize_rec(expr.lhs, flip).iff(
                self._symbolize_rec(expr.rhs, flip)
            )
        if isinstance(expr, EImplies):
            return self._symbolize_rec(expr.lhs, flip).implies(
                self._symbolize_rec(expr.rhs, flip)
            )
        if isinstance(expr, WordCmp):  # pragma: no cover - lowered above
            raise ModelError(f"unresolved word comparison {expr}")
        raise TypeError(f"unknown expression node {type(expr).__name__}")

    # ------------------------------------------------------------------
    # Image operators (paper: forward / reachable)
    # ------------------------------------------------------------------

    def image(self, states: Function) -> Function:
        """One-step forward image — the paper's ``forward(S0)``.

        Partitioned mode runs the early-quantification ``and_exists`` chain
        over the per-latch conjuncts; mono mode the single relational
        product against the monolithic relation.  Both compute the same
        set, and BDD canonicity makes the results the same node.
        """
        if self.trans_mode == TRANS_PARTITIONED:
            over_next = self.partition.relprod(states, self._cur_list)
        else:
            over_next = self.transition.and_exists(states, self._cur_list)
        return over_next.rename(self._next_to_cur)

    forward = image

    def preimage(self, states: Function) -> Function:
        """One-step backward image (states with some successor in ``states``).

        Partitioning pays off most here: each conjunct mentions exactly one
        next-state variable, so every chain step retires one quantified
        variable immediately (free-input next copies never even enter the
        product — they are quantified out of the renamed set up front).
        """
        over_next = states.rename(self._cur_to_next)
        if self.trans_mode == TRANS_PARTITIONED:
            return self.partition.relprod(over_next, self._next_list)
        return self.transition.and_exists(over_next, self._next_list)

    def reachable_from(self, start: Function) -> Function:
        """The paper's ``reachable(S0)``: all states reachable from ``start``
        in zero or more steps (includes ``start``)."""
        reached = start
        frontier = start
        while not frontier.is_false():
            new = self.image(frontier).diff(reached)
            reached = reached | new
            frontier = new
        return reached

    def reachable(self) -> Function:
        """All states reachable from the initial set (cached)."""
        if self._reachable is None:
            self._compute_rings()
        return self._reachable

    def rings(self) -> List[Function]:
        """Breadth-first onion rings from the initial states (cached).

        ``rings()[k]`` is the set of states first reached in exactly ``k``
        steps; used for shortest-path trace generation (paper Section 3).
        """
        if self._rings is None:
            self._compute_rings()
        return list(self._rings)

    def _compute_rings(self) -> None:
        telemetry = self.telemetry
        with telemetry.span("reachability", machine=self.name):
            sample = telemetry.spans_enabled
            rings = [self.init]
            reached = self.init
            frontier = self.init
            if sample:
                # Frontier samples use only read-only queries (satcount,
                # node size): no BDD nodes, no cache traffic — the run
                # stays byte-identical with telemetry off.
                telemetry.event(
                    "frontier",
                    iteration=0,
                    frontier_states=self.count_states(frontier),
                    reached_nodes=reached.size(),
                )
            while not frontier.is_false():
                new = self.image(frontier).diff(reached)
                if new.is_false():
                    break
                rings.append(new)
                reached = reached | new
                frontier = new
                if sample:
                    telemetry.event(
                        "frontier",
                        iteration=len(rings) - 1,
                        frontier_states=self.count_states(frontier),
                        reached_nodes=reached.size(),
                    )
            self._reachable = reached
            self._rings = rings

    # ------------------------------------------------------------------
    # Counting / enumeration
    # ------------------------------------------------------------------

    def count_states(self, states: Function) -> int:
        """Number of states in the set (over the state variables)."""
        return states.satcount(self._cur_list)

    def iter_states(self, states: Function) -> Iterator[Dict[str, bool]]:
        """Iterate the states of a set as ``{state var name: value}`` dicts."""
        id_to_name = {self.current_ids[v]: v for v in self.state_vars}
        for assignment in states.iter_sat(self._cur_list):
            yield {id_to_name[i]: val for i, val in assignment.items()}

    def state_cube(self, assignment: Dict[str, bool]) -> Function:
        """The singleton state set for a complete state assignment."""
        missing = [v for v in self.state_vars if v not in assignment]
        if missing:
            raise ModelError(f"state assignment missing variables: {missing}")
        raw = {self.current_ids[v]: bool(assignment[v]) for v in self.state_vars}
        return Function(self.manager, self.manager.cube(raw))

    def format_state(self, state: Dict[str, bool]) -> str:
        """Human-readable one-line rendering of a (possibly partial) state.

        Word bits are recomposed into integers; variables absent from the
        assignment are omitted rather than defaulted.
        """
        parts: List[str] = []
        shown = set()
        for word, bits in sorted(self.words.items()):
            if all(b in state for b in bits):
                value = sum((1 << i) for i, b in enumerate(bits) if state[b])
                parts.append(f"{word}={value}")
                shown.update(bits)
        for var in self.state_vars:
            if var not in shown and var in state:
                parts.append(f"{var}={int(bool(state[var]))}")
        return " ".join(parts)

    # ------------------------------------------------------------------
    # Trace generation (paper Section 3, last paragraph)
    # ------------------------------------------------------------------

    def shortest_trace(self, target: Function) -> Optional[List[Dict[str, bool]]]:
        """Shortest path (as full state assignments) from an initial state to
        ``target``, via breadth-first rings and backward images.

        Returns ``None`` when the target is unreachable.  The input portion
        of each state is the stimulus that drives the circuit along the
        trace (the "input sequence" the paper prints for uncovered states).
        """
        rings = self.rings()
        hit_index = None
        for k, ring in enumerate(rings):
            if ring.intersects(target):
                hit_index = k
                break
        if hit_index is None:
            return None
        # Pick a state in the intersection, then walk backwards ring by ring.
        current = self._pick(rings[hit_index] & target)
        path = [current]
        for k in range(hit_index - 1, -1, -1):
            pred = self.preimage(self.state_cube(current)) & rings[k]
            current = self._pick(pred)
            path.append(current)
        path.reverse()
        return path

    def _pick(self, states: Function) -> Dict[str, bool]:
        # pick_sat assigns exactly the requested variables, so the result
        # maps cleanly back to state-variable names.
        assignment = states.pick_sat(self._cur_list)
        if assignment is None:  # pragma: no cover - callers guarantee non-empty
            raise ModelError("internal error: picking from an empty state set")
        id_to_name = {self.current_ids[v]: v for v in self.state_vars}
        return {id_to_name[i]: val for i, val in assignment.items()}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<FSM {self.name!r} vars={len(self.state_vars)} "
            f"inputs={len(self.inputs)} signals={len(self.signals)} "
            f"trans={self.trans_mode}>"
        )
