"""FSM substrate: circuit builder, symbolic Kripke structure, explicit models."""

from .builder import CircuitBuilder
from .explicit import ExplicitGraph, ExplicitModel, enumerate_model
from .fsm import FSM, NEXT_SUFFIX

__all__ = [
    "FSM",
    "NEXT_SUFFIX",
    "CircuitBuilder",
    "ExplicitGraph",
    "ExplicitModel",
    "enumerate_model",
]
