"""FSM substrate: circuit builder, symbolic Kripke structure, explicit models."""

from .builder import CircuitBuilder
from .explicit import ExplicitGraph, ExplicitModel, enumerate_model
from .fsm import FSM, NEXT_SUFFIX
from .partition import (
    TRANS_MODES,
    TRANS_MONO,
    TRANS_PARTITIONED,
    Schedule,
    ScheduleStep,
    TransitionPartition,
    early_quantification_schedule,
)

__all__ = [
    "FSM",
    "NEXT_SUFFIX",
    "CircuitBuilder",
    "ExplicitGraph",
    "ExplicitModel",
    "enumerate_model",
    "TRANS_MODES",
    "TRANS_MONO",
    "TRANS_PARTITIONED",
    "Schedule",
    "ScheduleStep",
    "TransitionPartition",
    "early_quantification_schedule",
]
