"""Explicit-state models: enumeration, toy graphs, symbolic bridges.

Two purposes:

1. **Ground truth.** The Definition-3 mutation oracle and the explicit CTL
   checker run on an :class:`ExplicitModel` — a plain adjacency-list Kripke
   structure — giving an independent semantics against which the symbolic
   pipeline is validated (the paper's Correctness Theorem, checked
   empirically).

2. **The paper's figures.** Figures 1-3 are small hand-drawn state graphs;
   :class:`ExplicitGraph` lets tests and benchmarks write them down
   literally (named states, labels, edges) and bridge them into the
   symbolic engine via :meth:`ExplicitGraph.to_fsm`.
"""

from __future__ import annotations

import itertools
import math
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..bdd import BDDManager, Function
from ..errors import ModelError
from ..expr.ast import Expr
from ..expr.bitvector import resolve_words
from ..expr.evaluator import evaluate
from .fsm import FSM, NEXT_SUFFIX

__all__ = ["ExplicitModel", "ExplicitGraph", "enumerate_model"]

State = Tuple[bool, ...]


class ExplicitModel:
    """An explicit Kripke structure over integer state indices.

    Attributes
    ----------
    n:
        Number of states.
    successors / predecessors:
        Adjacency lists (every state of a total relation has successors).
    initial:
        Indices of initial states.
    signal_values:
        Per-state signal valuations: ``signal_values[i][name] -> bool``.
    """

    def __init__(
        self,
        successors: List[List[int]],
        initial: Set[int],
        signal_values: List[Dict[str, bool]],
        words=None,
        state_names: Optional[List[str]] = None,
    ):
        self.n = len(successors)
        self.successors = successors
        self.initial = set(initial)
        self.signal_values = signal_values
        self.words = dict(words) if words else {}
        self.state_names = state_names or [str(i) for i in range(self.n)]
        self.predecessors: List[List[int]] = [[] for _ in range(self.n)]
        for src, outs in enumerate(successors):
            for dst in outs:
                self.predecessors[dst].append(src)

    def eval_atom(
        self, expr: Expr, state: int, overrides: Optional[Dict[str, List[bool]]] = None
    ) -> bool:
        """Evaluate a propositional atom at ``state``.

        ``overrides`` maps signal names to per-state value vectors; the
        mutation oracle uses it to install the flipped shadow signal ``q'``
        without copying the whole labelling.
        """
        env = self.signal_values[state]
        if overrides:
            env = dict(env)
            for name, vector in overrides.items():
                env[name] = vector[state]
        return evaluate(expr, env, self.words)

    def states_satisfying(
        self, expr: Expr, overrides: Optional[Dict[str, List[bool]]] = None
    ) -> Set[int]:
        """All state indices at which ``expr`` evaluates true."""
        return {
            i for i in range(self.n) if self.eval_atom(expr, i, overrides)
        }

    def signal_vector(self, name: str) -> List[bool]:
        """The labelling of signal ``name`` as a per-state vector.

        Raises :class:`~repro.errors.ModelError` for a name absent from the
        labelling — silently defaulting unknown names to all-False would
        hand callers (e.g. the mutation oracle) a phantom signal that is
        false everywhere, and every result downstream would be garbage.
        """
        if self.n and any(name not in self.signal_values[i] for i in range(self.n)):
            known = sorted(self.signal_values[0])
            raise ModelError(
                f"unknown signal {name!r} in explicit model; known signals: "
                f"{known[:12]}{'...' if len(known) > 12 else ''}"
                + (
                    f" (did you mean one of the bits of word {name!r}: "
                    f"{self.words[name]}?)"
                    if name in self.words
                    else ""
                )
            )
        return [bool(self.signal_values[i][name]) for i in range(self.n)]


class ExplicitGraph:
    """A hand-written state graph (the paper's figure style).

    States are named; labels are the signals true in the state.  Build with
    :meth:`state` and :meth:`edge`, then use :meth:`to_model` for explicit
    algorithms or :meth:`to_fsm` to push the same graph through the
    symbolic engine.
    """

    def __init__(self, name: str = "graph", signals: Iterable[str] = ()):
        self.name = name
        self._names: List[str] = []
        self._index: Dict[str, int] = {}
        self._labels: Dict[str, Set[str]] = {}
        self._initial: Set[str] = set()
        self._edges: List[Tuple[str, str]] = []
        # Declared signal universe; labels add to it.  Declaring signals up
        # front lets a signal exist while being true in no state.
        self._declared_signals: Set[str] = set(signals)

    def state(
        self, name: str, labels: Iterable[str] = (), initial: bool = False
    ) -> str:
        """Add a state with the given true signals; returns the name."""
        if name in self._index:
            raise ModelError(f"duplicate state {name!r}")
        self._index[name] = len(self._names)
        self._names.append(name)
        self._labels[name] = set(labels)
        if initial:
            self._initial.add(name)
        return name

    def edge(self, src: str, dst: str) -> None:
        """Add a transition ``src -> dst``."""
        for name in (src, dst):
            if name not in self._index:
                raise ModelError(f"unknown state {name!r}")
        self._edges.append((src, dst))

    def self_loop_terminal_states(self) -> None:
        """Add self-loops on states without successors (totalise the relation).

        CTL semantics require a total transition relation; figures usually
        leave final states implicit, so call this after drawing the graph.
        """
        with_succ = {src for src, _ in self._edges}
        for name in self._names:
            if name not in with_succ:
                self._edges.append((name, name))

    @property
    def signal_names(self) -> FrozenSet[str]:
        out: Set[str] = set(self._declared_signals)
        for labels in self._labels.values():
            out.update(labels)
        return frozenset(out)

    def to_model(self) -> ExplicitModel:
        """Materialise as an :class:`ExplicitModel`."""
        if not self._initial:
            raise ModelError(f"graph {self.name!r} has no initial state")
        n = len(self._names)
        succ: List[List[int]] = [[] for _ in range(n)]
        for src, dst in self._edges:
            succ[self._index[src]].append(self._index[dst])
        for i, outs in enumerate(succ):
            if not outs:
                raise ModelError(
                    f"state {self._names[i]!r} has no successor; call "
                    "self_loop_terminal_states() to totalise the relation"
                )
        signals = sorted(self.signal_names)
        values = [
            {s: (s in self._labels[name]) for s in signals}
            for name in self._names
        ]
        return ExplicitModel(
            succ,
            {self._index[s] for s in self._initial},
            values,
            state_names=list(self._names),
        )

    # ------------------------------------------------------------------
    # Symbolic bridge
    # ------------------------------------------------------------------

    def encoding_width(self) -> int:
        """Bits needed to encode the state index."""
        return max(1, math.ceil(math.log2(max(2, len(self._names)))))

    def state_bits(self, name: str) -> Dict[str, bool]:
        """The binary encoding of a named state as ``{bit var: value}``."""
        index = self._index[name]
        width = self.encoding_width()
        return {f"s{i}": bool((index >> i) & 1) for i in range(width)}

    def to_fsm(self, manager: Optional[BDDManager] = None) -> FSM:
        """Encode the graph as a symbolic FSM (state index in binary).

        State variables are ``s0..s{k-1}``; every labelled signal becomes a
        defined proposition (the union of its states' cubes).  Unused binary
        codes are unreachable, so they never enter the coverage space.

        The relation is built edge-by-edge as a single BDD, so graph FSMs
        always run in monolithic mode — there is no per-latch functional
        structure to partition.  The mono/partitioned cross-check tests use
        this as the partition-free reference semantics.
        """
        if not self._initial:
            raise ModelError(f"graph {self.name!r} has no initial state")
        if manager is None:
            manager = BDDManager()
        width = self.encoding_width()
        state_vars = [f"s{i}" for i in range(width)]
        for var in state_vars:
            manager.add_var(var)
            manager.add_var(var + NEXT_SUFFIX)

        def cube(name: str, next_copy: bool) -> Function:
            bits = self.state_bits(name)
            raw = {
                manager.var_id(var + (NEXT_SUFFIX if next_copy else "")): value
                for var, value in bits.items()
            }
            return Function(manager, manager.cube(raw))

        transition = Function.false(manager)
        for src, dst in self._edges:
            transition = transition | (cube(src, False) & cube(dst, True))
        init = Function.false(manager)
        for name in self._initial:
            init = init | cube(name, False)

        signals: Dict[str, Function] = {}
        for var in state_vars:
            signals[var] = Function.var(manager, var)
        for signal in sorted(self.signal_names):
            acc = Function.false(manager)
            for name in self._names:
                if signal in self._labels[name]:
                    acc = acc | cube(name, False)
            signals[signal] = acc

        return FSM(
            manager=manager,
            name=self.name,
            state_vars=state_vars,
            inputs=[],
            transition=transition,
            trans_mode="mono",
            init=init,
            signals=signals,
        )

    def states_to_set(self, fsm: FSM, names: Iterable[str]) -> Function:
        """The symbolic state set for the given named states of this graph."""
        out = Function.false(fsm.manager)
        for name in names:
            raw = {
                fsm.current_ids[var]: value
                for var, value in self.state_bits(name).items()
            }
            out = out | Function(fsm.manager, fsm.manager.cube(raw))
        return out

    def set_to_states(self, fsm: FSM, states: Function) -> Set[str]:
        """Decode a symbolic state set back to graph state names."""
        width = self.encoding_width()
        out: Set[str] = set()
        for assignment in fsm.iter_states(states):
            index = sum(
                (1 << i) for i in range(width) if assignment.get(f"s{i}", False)
            )
            if index < len(self._names):
                out.add(self._names[index])
        return out


def enumerate_model(fsm: FSM, limit: int = 200_000) -> ExplicitModel:
    """Enumerate the reachable states of a functional FSM explicitly.

    Requires the FSM to carry next-state expressions (circuits built via
    :class:`~repro.fsm.builder.CircuitBuilder`).  Successor states are the
    latch updates crossed with every input valuation.  Raises
    :class:`ModelError` past ``limit`` states — this path exists for
    oracle validation on small instances, not for scale.
    """
    if fsm.latch_next_exprs is None or fsm.signal_exprs is None:
        raise ModelError(
            "explicit enumeration needs next-state expressions; this FSM "
            "was built from a raw relation"
        )
    latches = fsm.latches
    inputs = fsm.inputs
    order = fsm.state_vars
    known = frozenset(fsm.signals)

    next_exprs = {
        latch: resolve_words(expr, fsm.words, known)
        for latch, expr in fsm.latch_next_exprs.items()
    }
    define_exprs = {
        name: resolve_words(expr, fsm.words, known)
        for name, expr in fsm.signal_exprs.items()
        if name not in set(order)
    }

    def full_env(state: Dict[str, bool]) -> Dict[str, bool]:
        """State variables plus all defined signals, resolved in dependency
        order (defines may reference other defines)."""
        env = dict(state)
        pending = dict(define_exprs)
        while pending:
            progressed = False
            for name in list(pending):
                try:
                    env[name] = evaluate(pending[name], env, fsm.words)
                except Exception:
                    continue
                del pending[name]
                progressed = True
            if not progressed:
                raise ModelError(
                    f"cannot resolve defines {sorted(pending)} for {fsm.name!r}"
                )
        return env

    def successors_of(state: Dict[str, bool]) -> List[Dict[str, bool]]:
        env = full_env(state)
        latch_next = {
            latch: evaluate(next_exprs[latch], env, fsm.words)
            for latch in latches
        }
        out = []
        for bits in itertools.product([False, True], repeat=len(inputs)):
            succ = dict(latch_next)
            succ.update(zip(inputs, bits))
            out.append(succ)
        return out

    initial_states = [
        dict(assignment)
        for assignment in _iter_init(fsm)
    ]

    index: Dict[State, int] = {}
    states: List[Dict[str, bool]] = []
    succ_lists: List[List[int]] = []
    queue: List[int] = []

    def intern(state: Dict[str, bool]) -> int:
        key = tuple(bool(state[v]) for v in order)
        found = index.get(key)
        if found is not None:
            return found
        if len(states) >= limit:
            raise ModelError(
                f"explicit enumeration exceeded {limit} states for {fsm.name!r}"
            )
        idx = len(states)
        index[key] = idx
        states.append({v: bool(state[v]) for v in order})
        succ_lists.append([])
        queue.append(idx)
        return idx

    initial = {intern(s) for s in initial_states}
    cursor = 0
    while cursor < len(queue):
        idx = queue[cursor]
        cursor += 1
        for succ in successors_of(states[idx]):
            succ_lists[idx].append(intern(succ))

    # Label every state with every signal (defines evaluated via exprs).
    signal_values: List[Dict[str, bool]] = [full_env(state) for state in states]

    return ExplicitModel(succ_lists, initial, signal_values, words=fsm.words)


def _iter_init(fsm: FSM):
    """Iterate initial states as name->bool dicts."""
    yield from fsm.iter_states(fsm.init)
