"""Partitioned transition relations with early quantification.

The classic scaling move of symbolic model checking (Burch/Clarke/Long):
instead of one monolithic transition BDD ``TM = T1 & T2 & ... & Tk`` (one
conjunct per latch), keep the conjuncts separate and compute images as a
*scheduled* chain of relational products::

    image(S) = exists V . (S & T1 & ... & Tk)
             = exists Q_k . (... exists Q_1 . (S & T_{o1}) ... & T_{ok})

where ``o`` orders the conjuncts and ``Q_i`` quantifies out every variable
whose last occurrence is at step ``i`` — *early quantification*.  The
monolithic relation (often the biggest BDD of the whole run) is never
built, and intermediate products stay small because variables leave the
computation as soon as they legally can.

Two pieces live here:

* :func:`early_quantification_schedule` — given the support of each
  conjunct and the set of variables to quantify, choose a conjunct order
  (greedy minimum-active-lifetime heuristic) and place each variable at
  its earliest legal step.
* :class:`TransitionPartition` — the list of per-latch conjuncts an FSM
  carries in partitioned mode, with schedules cached per quantification
  set.  :meth:`TransitionPartition.relprod` executes the chain via
  :meth:`repro.bdd.manager.BDDManager.and_exists_chain`.

Schedules are expressed in *variable ids* (stable across dynamic
reordering), so a partition built once stays valid after sifting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..bdd import Function
from ..errors import ModelError

__all__ = [
    "TRANS_MONO",
    "TRANS_PARTITIONED",
    "TRANS_MODES",
    "ScheduleStep",
    "Schedule",
    "early_quantification_schedule",
    "TransitionPartition",
]

#: Execute images through the monolithic transition relation.
TRANS_MONO = "mono"
#: Execute images through the scheduled conjunct chain (the default).
TRANS_PARTITIONED = "partitioned"
#: The valid transition-relation execution modes.
TRANS_MODES = (TRANS_MONO, TRANS_PARTITIONED)


def validate_trans_mode(trans: str) -> str:
    """Return ``trans`` if it names a valid mode, else raise ``ModelError``.

    >>> validate_trans_mode("mono")
    'mono'
    """
    if trans not in TRANS_MODES:
        raise ModelError(
            f"unknown transition mode {trans!r}; valid: {', '.join(TRANS_MODES)}"
        )
    return trans


@dataclass(frozen=True)
class ScheduleStep:
    """One step of an early-quantification schedule.

    ``conjunct`` indexes the partition's conjunct list; ``quantify`` is the
    tuple of variable ids quantified out right after this conjunct is
    conjoined (its variables occur in no later conjunct).
    """

    conjunct: int
    quantify: Tuple[int, ...]


@dataclass(frozen=True)
class Schedule:
    """A complete schedule for one quantification variable set.

    ``prequantify`` are variables to existentially quantify out of the
    *state set* before the chain starts — variables mentioned by no
    conjunct at all (for preimages these are the next-state copies of free
    inputs, which is exactly why preimages profit most from partitioning).
    ``steps`` then runs the conjuncts in scheduled order.
    """

    prequantify: Tuple[int, ...]
    steps: Tuple[ScheduleStep, ...]

    def quantified_vars(self) -> FrozenSet[int]:
        """Every variable the schedule quantifies (for validity checks)."""
        out = set(self.prequantify)
        for step in self.steps:
            out.update(step.quantify)
        return frozenset(out)


def _order_conjuncts(
    supports: Sequence[FrozenSet[int]], quantify: FrozenSet[int]
) -> List[int]:
    """Greedy conjunct order minimising the live quantified-variable set.

    At each step pick the conjunct that retires the most quantified
    variables (variables occurring in no other remaining conjunct) while
    introducing the fewest new ones; ties break toward smaller support and
    then the original index, keeping the order deterministic.
    """
    remaining = list(range(len(supports)))
    # How many *remaining* conjuncts mention each quantified variable.
    mentions: Dict[int, int] = {}
    for support in supports:
        for var in support & quantify:
            mentions[var] = mentions.get(var, 0) + 1
    active: set = set()
    order: List[int] = []
    while remaining:
        best = None
        best_key = None
        for index in remaining:
            qvars = supports[index] & quantify
            freed = sum(1 for v in qvars if mentions[v] == 1)
            introduced = sum(
                1 for v in qvars if v not in active and mentions[v] > 1
            )
            # Maximise freed, minimise introduced (lexicographic), then the
            # deterministic tie-breakers.
            key = (-freed, introduced, len(supports[index]), index)
            if best_key is None or key < best_key:
                best, best_key = index, key
        order.append(best)
        remaining.remove(best)
        for var in supports[best] & quantify:
            mentions[var] -= 1
            if mentions[var] == 0:
                active.discard(var)
            else:
                active.add(var)
    return order


def early_quantification_schedule(
    supports: Sequence[FrozenSet[int]], quantify: Sequence[int]
) -> Schedule:
    """Compute an early-quantification schedule.

    Parameters
    ----------
    supports:
        Per-conjunct support sets (variable ids).
    quantify:
        The variable ids to quantify out of the overall product.

    Returns a :class:`Schedule` in which every quantified variable appears
    exactly once, placed at the *earliest legal* position: variables no
    conjunct mentions go to ``prequantify``; every other variable is
    quantified at the last scheduled conjunct that mentions it (any earlier
    would change the result, any later would keep it alive needlessly).
    """
    quantify_set = frozenset(quantify)
    order = _order_conjuncts(supports, quantify_set)
    last_step: Dict[int, int] = {}
    for step, index in enumerate(order):
        for var in supports[index] & quantify_set:
            last_step[var] = step
    prequantify = tuple(sorted(quantify_set - set(last_step)))
    groups: List[List[int]] = [[] for _ in order]
    for var, step in last_step.items():
        groups[step].append(var)
    steps = tuple(
        ScheduleStep(conjunct=index, quantify=tuple(sorted(group)))
        for index, group in zip(order, groups)
    )
    return Schedule(prequantify=prequantify, steps=steps)


class TransitionPartition:
    """A conjunctively partitioned transition relation.

    Holds one relation conjunct per latch (``latch#next <-> f(current)``
    for functional circuits, but any conjunction of relations works) and
    lazily computes/caches an early-quantification schedule per distinct
    quantification variable set (one for images, one for preimages, in
    practice).

    Parameters
    ----------
    conjuncts:
        The relation conjuncts, all owned by the same manager.
    labels:
        Optional human-readable name per conjunct (the latch name), used in
        diagnostics and the performance docs.
    """

    def __init__(
        self,
        conjuncts: Sequence[Function],
        labels: Optional[Sequence[str]] = None,
    ):
        if not conjuncts:
            raise ModelError("a transition partition needs at least one conjunct")
        self.conjuncts: List[Function] = list(conjuncts)
        manager = self.conjuncts[0].manager
        for conjunct in self.conjuncts:
            if conjunct.manager is not manager:
                raise ModelError("partition conjuncts span multiple managers")
        self.manager = manager
        if labels is not None and len(labels) != len(self.conjuncts):
            raise ModelError(
                f"{len(labels)} labels for {len(self.conjuncts)} conjuncts"
            )
        self.labels: List[str] = (
            list(labels)
            if labels is not None
            else [f"t{i}" for i in range(len(self.conjuncts))]
        )
        self._supports: List[FrozenSet[int]] = [
            frozenset(conjunct.support()) for conjunct in self.conjuncts
        ]
        self._schedules: Dict[FrozenSet[int], Schedule] = {}
        self._mono: Optional[Function] = None

    def __len__(self) -> int:
        return len(self.conjuncts)

    def supports(self) -> List[FrozenSet[int]]:
        """Per-conjunct support sets (variable ids), in conjunct order."""
        return list(self._supports)

    def schedule(self, quantify: Sequence[int]) -> Schedule:
        """The (cached) early-quantification schedule for ``quantify``."""
        key = frozenset(quantify)
        cached = self._schedules.get(key)
        if cached is None:
            cached = early_quantification_schedule(self._supports, key)
            self._schedules[key] = cached
        return cached

    def relprod(self, states: Function, quantify: Sequence[int]) -> Function:
        """``exists quantify . (states & T1 & ... & Tk)`` via the schedule.

        The workhorse behind partitioned :meth:`repro.fsm.fsm.FSM.image`
        and :meth:`~repro.fsm.fsm.FSM.preimage`.
        """
        schedule = self.schedule(quantify)
        if schedule.prequantify:
            states = states.exist(schedule.prequantify)
        steps = [
            (self.conjuncts[step.conjunct], step.quantify)
            for step in schedule.steps
        ]
        return states.and_exists_chain(steps)

    def monolithic(self) -> Function:
        """The conjunction of all conjuncts (cached).

        Building this is exactly the cost partitioning avoids; it exists
        for mono-mode execution, cross-checks, and size diagnostics.
        """
        if self._mono is None:
            out = Function.true(self.manager)
            for conjunct in self.conjuncts:
                out = out & conjunct
            self._mono = out
        return self._mono

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        sizes = sum(c.size() for c in self.conjuncts)
        return (
            f"<TransitionPartition conjuncts={len(self.conjuncts)} "
            f"total_nodes={sizes}>"
        )
