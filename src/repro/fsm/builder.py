"""Circuit construction API: latches, free inputs, defines, words, fairness.

:class:`CircuitBuilder` is the library's "HDL": circuits are described as
Mealy machines (latches with next-state expressions, free primary inputs,
combinational ``define`` outputs), and :meth:`CircuitBuilder.build` compiles
them into the symbolic Kripke form of :class:`~repro.fsm.fsm.FSM` the same
way SMV does — inputs become unconstrained state variables.

Example::

    b = CircuitBuilder("counter")
    b.input("stall")
    b.input("reset")
    b.word_latch("count", width=3, init=0,
                 next_=mux_tree_for_counter(...))
    b.define("at_top", "count = 4")
    fsm = b.build()
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

from ..bdd import BDDManager, Function, ResourcePolicy
from ..engine import EngineConfig, _coalesce_trans
from ..errors import ModelError
from ..expr.ast import Expr, Var
from ..expr.bitvector import WordTable, int_to_bits, resolve_words
from ..expr.parser import parse_expr
from .fsm import FSM, NEXT_SUFFIX
from .partition import (
    TRANS_MONO,
    TransitionPartition,
    validate_trans_mode,
)

__all__ = ["CircuitBuilder"]

ExprLike = Union[str, Expr]


def _to_expr(value: ExprLike) -> Expr:
    if isinstance(value, str):
        return parse_expr(value)
    if isinstance(value, Expr):
        return value
    raise TypeError(f"expected expression or string, got {type(value).__name__}")


class CircuitBuilder:
    """Accumulates a circuit description and compiles it to an :class:`FSM`."""

    def __init__(self, name: str):
        self.name = name
        self._inputs: List[str] = []
        self._latches: List[str] = []
        self._latch_init: Dict[str, bool] = {}
        self._latch_next: Dict[str, Expr] = {}
        self._defines: Dict[str, Expr] = {}
        self._define_order: List[str] = []
        self._words: WordTable = {}
        self._fairness: List[Expr] = []

    # ------------------------------------------------------------------
    # Declarations
    # ------------------------------------------------------------------

    def _check_fresh(self, name: str) -> None:
        if not name or not name[0].isalpha() and name[0] != "_":
            raise ModelError(f"invalid signal name {name!r}")
        if NEXT_SUFFIX in name:
            raise ModelError(f"{NEXT_SUFFIX!r} is reserved: {name!r}")
        taken = set(self._inputs) | set(self._latches) | set(self._defines) | set(
            self._words
        )
        if name in taken:
            raise ModelError(f"duplicate signal name {name!r}")

    def input(self, name: str) -> Var:
        """Declare a free primary input; returns its :class:`Var` for reuse."""
        self._check_fresh(name)
        self._inputs.append(name)
        return Var(name)

    def latch(self, name: str, init: bool, next_: ExprLike) -> Var:
        """Declare a single-bit latch with reset value and next-state logic."""
        self._check_fresh(name)
        self._latches.append(name)
        self._latch_init[name] = bool(init)
        self._latch_next[name] = _to_expr(next_)
        return Var(name)

    def word_latch(
        self,
        name: str,
        width: int,
        init: int,
        next_: Sequence[ExprLike],
    ) -> List[str]:
        """Declare a ``width``-bit register as latches ``name0..name{w-1}``.

        ``next_`` gives the next-state expression of each bit, LSB first
        (see :mod:`repro.expr.arith` for increment/mux builders).  The word
        ``name`` is registered so properties can compare it directly
        (``name < 5``).  Returns the bit names.
        """
        if width < 1:
            raise ModelError(f"word {name!r} needs width >= 1")
        if len(next_) != width:
            raise ModelError(
                f"word {name!r}: {len(next_)} next expressions for width {width}"
            )
        self._check_fresh(name)
        init_bits = int_to_bits(init, width)
        bit_names = [f"{name}{i}" for i in range(width)]
        for bit, init_bit, nxt in zip(bit_names, init_bits, next_):
            self.latch(bit, init_bit, nxt)
        self._words[name] = bit_names
        return bit_names

    def word_input(self, name: str, width: int) -> List[str]:
        """Declare a ``width``-bit free input word ``name0..name{w-1}``."""
        self._check_fresh(name)
        bit_names = [f"{name}{i}" for i in range(width)]
        for bit in bit_names:
            self.input(bit)
        self._words[name] = bit_names
        return bit_names

    def define(self, name: str, expr: ExprLike) -> Var:
        """Declare a combinational signal (a named proposition)."""
        self._check_fresh(name)
        self._defines[name] = _to_expr(expr)
        self._define_order.append(name)
        return Var(name)

    def fairness(self, expr: ExprLike) -> None:
        """Add a fairness constraint (must hold infinitely often on fair paths)."""
        self._fairness.append(_to_expr(expr))

    def word(self, name: str, bits: Sequence[str]) -> None:
        """Register an alias word over existing bit signals (LSB first)."""
        if name in self._words:
            raise ModelError(f"duplicate word {name!r}")
        self._words[name] = list(bits)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def declared_signals(self) -> frozenset:
        """Every name declared so far: inputs, latches, defines, and words.

        Useful for validating externally supplied names (observed signals,
        don't-cares) against the circuit before :meth:`build` — the module
        elaborator (:mod:`repro.lang.elaborate`) uses this to turn unknown
        references into source-located errors instead of late build
        failures.
        """
        return (
            frozenset(self._inputs)
            | frozenset(self._latches)
            | frozenset(self._defines)
            | frozenset(self._words)
        )

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------

    def build(
        self,
        manager: Optional[BDDManager] = None,
        config: Optional[EngineConfig] = None,
        policy: Optional[ResourcePolicy] = None,
        *,
        trans: Optional[str] = None,
    ) -> FSM:
        """Compile the accumulated description into an :class:`FSM`.

        Declares variables in interleaved current/next order, resolves
        ``define`` chains (rejecting cycles), builds one transition-relation
        conjunct per latch, and symbolises fairness.

        ``config`` (an :class:`~repro.engine.EngineConfig`) carries every
        engine knob: its ``trans`` mode selects the image-execution mode of
        the resulting FSM — ``"partitioned"`` (default) keeps the per-latch
        conjuncts separate behind an early-quantification schedule,
        ``"mono"`` conjoins them into the classic monolithic relation up
        front; both machines compute identical sets (see
        ``tests/fsm/test_trans_equivalence.py``) — and its resource knobs
        compile to the manager's :class:`~repro.bdd.policy.ResourcePolicy`.

        ``policy`` is the low-level escape hatch for resource knobs beyond
        the config's portable subset (per-cache growth factors, compose
        generations, ...); when given it overrides the config's resource
        knobs.  When a ``manager`` is supplied, the policy is installed on
        it.

        ``trans=`` as a direct keyword is deprecated — pass
        ``config=EngineConfig(trans=...)``.
        """
        if isinstance(config, str):
            # Legacy positional call: build(manager, "mono") bound the
            # mode string to what is now the config slot.
            config, trans = None, config
        if trans is not None:
            # Preserve the legacy contract (ModelError on a bad mode)
            # before folding into the config.
            validate_trans_mode(trans)
        config = _coalesce_trans("CircuitBuilder.build", config, trans)
        trans = validate_trans_mode(config.trans)
        if policy is None:
            policy = config.policy()
        if manager is None:
            manager = BDDManager(policy=policy, backend=config.backend)
        elif policy is not None:
            manager.set_policy(policy)
        state_vars = self._latches + self._inputs
        if not state_vars:
            raise ModelError(f"circuit {self.name!r} has no state variables")
        for var in state_vars:
            manager.add_var(var)
            manager.add_var(var + NEXT_SUFFIX)

        known = frozenset(state_vars) | frozenset(self._defines)

        # Resolve define chains to functions of state variables only.
        signals: Dict[str, Function] = {}
        signal_exprs: Dict[str, Expr] = {}
        for var in state_vars:
            signals[var] = Function.var(manager, var)
            signal_exprs[var] = Var(var)
        resolving: set = set()

        def signal_fn(name: str) -> Function:
            if name in signals:
                return signals[name]
            if name not in self._defines:
                raise ModelError(
                    f"circuit {self.name!r}: unknown signal {name!r}"
                )
            if name in resolving:
                raise ModelError(
                    f"circuit {self.name!r}: combinational cycle through {name!r}"
                )
            resolving.add(name)
            fn = symbolize(self._defines[name])
            resolving.discard(name)
            signals[name] = fn
            return fn

        def symbolize(expr: Expr) -> Function:
            lowered = resolve_words(expr, self._words, known)
            return _symbolize(manager, lowered, signal_fn)

        for name in self._define_order:
            signal_fn(name)
            signal_exprs[name] = self._defines[name]

        # Transition relation: one conjunct per latch (``latch' <-> f``);
        # free inputs contribute no conjunct (their next value is
        # unconstrained).  The partition keeps the conjuncts separate;
        # mono mode conjoins them here, eagerly.
        conjuncts: List[Function] = []
        for latch in self._latches:
            next_var = Function.var(manager, latch + NEXT_SUFFIX)
            conjuncts.append(next_var.iff(symbolize(self._latch_next[latch])))
        partition = (
            TransitionPartition(conjuncts, labels=list(self._latches))
            if conjuncts
            else None
        )
        transition: Optional[Function] = None
        if partition is None:
            transition = Function.true(manager)  # no latches: inputs only
        elif trans == TRANS_MONO:
            transition = partition.monolithic()

        init = Function.true(manager)
        for latch in self._latches:
            var_fn = Function.var(manager, latch)
            init = init & (var_fn if self._latch_init[latch] else ~var_fn)

        fairness = [symbolize(e) for e in self._fairness]

        return FSM(
            manager=manager,
            name=self.name,
            state_vars=state_vars,
            inputs=self._inputs,
            transition=transition,
            partition=partition,
            trans_mode=trans if partition is not None else TRANS_MONO,
            init=init,
            signals=signals,
            signal_exprs=signal_exprs,
            words=self._words,
            fairness=fairness,
            latch_next_exprs=dict(self._latch_next),
        )


def _symbolize(manager: BDDManager, expr: Expr, signal_fn) -> Function:
    """Translate a word-free expression using ``signal_fn`` for atoms."""
    from ..expr.ast import (
        And as EAnd,
        Const,
        Iff as EIff,
        Implies as EImplies,
        Not as ENot,
        Or as EOr,
        Xor as EXor,
    )

    if isinstance(expr, Const):
        return Function.true(manager) if expr.value else Function.false(manager)
    if isinstance(expr, Var):
        return signal_fn(expr.name)
    if isinstance(expr, ENot):
        return ~_symbolize(manager, expr.operand, signal_fn)
    if isinstance(expr, EAnd):
        out = Function.true(manager)
        for arg in expr.args:
            out = out & _symbolize(manager, arg, signal_fn)
        return out
    if isinstance(expr, EOr):
        out = Function.false(manager)
        for arg in expr.args:
            out = out | _symbolize(manager, arg, signal_fn)
        return out
    if isinstance(expr, EXor):
        return _symbolize(manager, expr.lhs, signal_fn) ^ _symbolize(
            manager, expr.rhs, signal_fn
        )
    if isinstance(expr, EIff):
        return _symbolize(manager, expr.lhs, signal_fn).iff(
            _symbolize(manager, expr.rhs, signal_fn)
        )
    if isinstance(expr, EImplies):
        return _symbolize(manager, expr.lhs, signal_fn).implies(
            _symbolize(manager, expr.rhs, signal_fn)
        )
    raise TypeError(f"unexpected expression node {type(expr).__name__}")
