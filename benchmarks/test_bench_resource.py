"""Resource-manager benchmark: deep BDDs and bounded memory.

The seed engine died with ``RecursionError`` on any model with >= ~1200 BDD
levels (Python's default recursion limit), and never ran its garbage
collector, so node arrays and caches grew without bound.  This bench drives
the two fixes at production scale:

* **Depth** — a ~700-latch scaled pipeline (>= 1400 interleaved BDD levels)
  completes full reachability *and* a coverage estimate on the iterative
  core, with ``sys.getrecursionlimit()`` untouched at its default.
* **Memory** — the automatic GC keeps the live node count bounded by the
  configured threshold while the same workload runs, and the bench reports
  the peak-memory and GC-overhead numbers the policy trades off.

Numbers are printed via ``emit`` (visible with ``pytest -s``); set
``REPRO_BENCH_DEEP_STAGES`` to scale the deep case up or down (the default
349 stages = 700 latches = 1406 levels is the smallest instance past the
acceptance floor).
"""

import os
import sys
import time

from repro.circuits import build_pipeline
from repro.coverage import CoverageEstimator
from repro.ctl.parser import parse_ctl
from repro.engine import EngineConfig
from repro.mc import ModelChecker, WorkMeter

from .conftest import emit

#: 349 stages -> 700 latches (2 per stage + 2 hold-counter bits) -> 1406
#: interleaved current/next BDD levels: comfortably past both Python's
#: default recursion limit (1000) and the seed engine's ~1200-level crash.
DEEP_STAGES = int(os.environ.get("REPRO_BENCH_DEEP_STAGES", "349"))

#: Auto-GC live-node threshold for the deep run.
GC_THRESHOLD = 300_000


def test_deep_pipeline_reachability_and_coverage():
    """The previously-crashing case: >= 1400 levels end to end."""
    limit_before = sys.getrecursionlimit()
    config = EngineConfig(gc_threshold=GC_THRESHOLD)
    t0 = time.perf_counter()
    fsm = build_pipeline(stages=DEEP_STAGES, config=config)
    build_seconds = time.perf_counter() - t0
    levels = 2 * len(fsm.state_vars)
    if DEEP_STAGES >= 349:
        assert len(fsm.latches) >= 700
        assert levels >= 1400

    manager = fsm.manager
    with WorkMeter(manager) as reach_meter:
        reachable = fsm.reachable()
    # Fairness off: the bench measures the engine substrate, not the
    # Emerson-Lei fixpoint (which multiplies the image count).
    checker = ModelChecker(fsm, use_fairness=False)
    estimator = CoverageEstimator(fsm, checker=checker)
    prop = parse_ctl("AG (output | !output)")
    with WorkMeter(manager) as cover_meter:
        report = estimator.estimate([prop], observed="output")

    # Depth: the whole run completed without touching the recursion limit.
    assert sys.getrecursionlimit() == limit_before
    assert not reachable.is_false()
    assert report.space_count > 0

    # Memory: auto-GC ran, and the live structure fits the threshold (the
    # unique table transiently carries garbage between collections; a final
    # sweep exposes the actual live set the threshold governs).
    assert manager.gc_runs >= 1
    manager.collect_garbage()
    assert manager.node_count() <= GC_THRESHOLD

    stats = reach_meter.stats + cover_meter.stats
    emit(
        f"Deep pipeline (stages={DEEP_STAGES}, latches={len(fsm.latches)}, "
        f"levels={levels})",
        [
            f"build:          {build_seconds:.2f}s",
            f"reachability:   {reach_meter.stats.seconds:.2f}s "
            f"({reach_meter.stats.nodes_created} nodes created)",
            f"coverage:       {cover_meter.stats.seconds:.2f}s "
            f"({report.percentage:.2f}% of a ~2^"
            f"{report.space_count.bit_length() - 1}-state space)",
            f"peak live:      {stats.peak_live_nodes} nodes "
            f"(threshold {GC_THRESHOLD}, final live {manager.node_count()})",
            f"GC overhead:    {stats.gc_runs} runs, {stats.gc_seconds:.2f}s "
            f"({100 * stats.gc_seconds / max(stats.seconds, 1e-9):.1f}% of "
            f"measured time)",
            f"recursion limit untouched at {limit_before}",
        ],
    )


def test_auto_gc_bounds_peak_memory():
    """GC on vs off, same mid-size workload: the peak drops, results don't."""
    stages = max(8, min(80, DEEP_STAGES // 4))

    def run(config):
        fsm = build_pipeline(stages=stages, config=config)
        fsm.reachable()
        manager = fsm.manager
        return manager.peak_nodes, manager.gc_runs, fsm.count_states(fsm.reachable())

    peak_off, gc_off, states_off = run(
        EngineConfig(gc_threshold=0, cache_threshold=0)
    )
    threshold = max(10_000, peak_off // 4)
    peak_on, gc_on, states_on = run(EngineConfig(gc_threshold=threshold))

    assert gc_off == 0
    assert gc_on >= 1
    assert states_on == states_off  # GC changes cost, never results
    assert peak_on < peak_off
    emit(
        f"Auto-GC memory bound (stages={stages})",
        [
            f"GC off: peak {peak_off} live nodes",
            f"GC on (threshold {threshold}): peak {peak_on} live nodes "
            f"({gc_on} collections)",
            f"peak reduction: {100 * (1 - peak_on / peak_off):.1f}%",
        ],
    )


def test_gc_overhead_is_bounded():
    """The GC's own cost stays a small fraction of total runtime even at an
    intentionally tight threshold."""
    stages = max(8, min(60, DEEP_STAGES // 6))
    fsm = build_pipeline(stages=stages, config=EngineConfig(gc_threshold=20_000))
    with WorkMeter(fsm.manager) as meter:
        fsm.reachable()
    stats = meter.stats
    assert stats.gc_runs >= 1
    assert stats.gc_seconds < stats.seconds  # overhead, not the workload
    emit(
        f"GC overhead (stages={stages}, threshold 20k)",
        [
            f"workload: {stats.seconds:.2f}s, GC: {stats.gc_seconds:.2f}s "
            f"across {stats.gc_runs} collections "
            f"({100 * stats.gc_seconds / max(stats.seconds, 1e-9):.1f}%)",
        ],
    )
