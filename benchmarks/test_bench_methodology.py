"""Section 4/5 methodology narrative: staged hole-closing on all circuits.

Regenerates the progression the paper reports in prose:

* Circuit 1: initial lo suite passes on the buggy design with a hole; the
  hole-closing property fails (the escaped bug); the fixed design reaches
  100% with the augmented suite.
* Circuit 2: wrap 5 props -> +3 props -> +stall property -> 100%.
* Circuit 3: output 8 props (hole = hold states) -> +retention -> 100%.
"""

from repro.analysis import Analysis
from repro.circuits import (
    build_circular_queue,
    build_pipeline,
    build_priority_buffer,
    circular_queue_wrap_properties,
    circular_queue_wrap_stall_property,
    pipeline_augmented_properties,
    pipeline_output_properties,
    priority_buffer_lo_augmented_properties,
    priority_buffer_lo_hole_property,
    priority_buffer_lo_properties,
)
from repro.coverage import CoverageEstimator
from repro.mc import ModelChecker

from .conftest import emit


def test_methodology_circuit1_bug_hunt(benchmark):
    def run():
        initial = Analysis.from_fsm(
            build_priority_buffer(buggy=True),
            priority_buffer_lo_properties(), observed="lo",
        )
        initial_pass = initial.holds()
        initial_cov = initial.coverage().percentage
        # The hole-closing property is checked on the *same* shared
        # checker the facade owns — one model, one satisfaction cache.
        hole_prop_fails = not initial.checker.holds(
            priority_buffer_lo_hole_property()
        )

        final = Analysis.from_fsm(
            build_priority_buffer(buggy=False),
            priority_buffer_lo_augmented_properties(), observed="lo",
        )
        final_cov = final.coverage().percentage
        return initial_pass, initial_cov, hole_prop_fails, final_cov

    initial_pass, initial_cov, hole_prop_fails, final_cov = benchmark(run)
    assert initial_pass, "the bug must escape the initial suite"
    assert initial_cov < 100.0
    assert hole_prop_fails, "the hole-closing property must reveal the bug"
    assert final_cov == 100.0
    emit(
        "Methodology / Circuit 1 (escaped bug)",
        [f"buggy design, initial suite: PASS at {initial_cov:.2f}% coverage",
         "hole-closing property: FAIL -> bug revealed",
         f"fixed design, augmented suite: {final_cov:.2f}%"],
    )


def test_methodology_circuit2_staged_wrap(benchmark):
    def run():
        fsm = build_circular_queue()
        checker = ModelChecker(fsm)
        est = CoverageEstimator(fsm, checker=checker)
        stages = []
        initial = circular_queue_wrap_properties(stage="initial")
        stages.append(("initial (5 props)",
                       est.estimate(initial, observed="wrap").percentage))
        extended = circular_queue_wrap_properties(stage="extended")
        stages.append(("extended (+3 props)",
                       est.estimate(extended, observed="wrap").percentage))
        final = extended + [circular_queue_wrap_stall_property()]
        stages.append(("+ stall property",
                       est.estimate(final, observed="wrap").percentage))
        return stages

    stages = benchmark(run)
    percents = [p for _, p in stages]
    assert percents[0] < percents[1] < percents[2] == 100.0
    emit(
        "Methodology / Circuit 2 (wrap-bit staging; paper: 60.08% -> ... -> 100%)",
        [f"{name:20s} {percent:6.2f}%" for name, percent in stages],
    )


def test_methodology_circuit3_hold_hole(benchmark):
    def run():
        fsm = build_pipeline()
        checker = ModelChecker(fsm)
        est = CoverageEstimator(fsm, checker=checker)
        initial = est.estimate(
            pipeline_output_properties(), observed="output",
            dont_care="!out_valid",
        ).percentage
        final = est.estimate(
            pipeline_augmented_properties(), observed="output",
            dont_care="!out_valid",
        ).percentage
        return initial, final

    initial, final = benchmark(run)
    assert initial < final == 100.0
    emit(
        "Methodology / Circuit 3 (hold-period hole; paper: 74.36% -> 100%)",
        [f"initial 8 properties: {initial:6.2f}%",
         f"+ retention:          {final:6.2f}%"],
    )
