"""Shared helpers for the benchmark harness.

Each benchmark regenerates one table or figure of the paper and prints the
corresponding row(s) in the paper's format, annotated with the published
value for side-by-side comparison.  Absolute numbers (HP9000 seconds, SMV
BDD node counts) are testbed-specific; the asserted properties are the
*shapes*: which signals reach 100%, where the holes are, and that coverage
estimation costs about as much as verification.
"""

from __future__ import annotations

import pytest


def emit(title: str, lines) -> None:
    """Print a labelled result block (visible with `pytest -s`, and always
    visible in the captured-output section on failure)."""
    print()
    print(f"== {title} ==")
    for line in lines:
        print(f"   {line}")


@pytest.fixture
def table_row():
    """Format one Table 2 row: signal, #prop, %COV, verify cost, cover cost."""

    def _row(signal, n_props, percent, verify_stats, cover_stats, paper):
        return (
            f"{signal:10s} #prop={n_props:<3d} cov={percent:6.2f}% "
            f"(paper {paper}) verify[{verify_stats.format()}] "
            f"coverage[{cover_stats.format()}]"
        )

    return _row
