"""Table 2 of the paper: coverage results for the three circuits.

One benchmark per row.  Each measures (a) the verification cost of the
property suite and (b) the coverage-estimation cost, prints the row in the
paper's format next to the published value, and asserts the shape:

=========  ======  =========  =====================================
signal     # prop  paper %    shape asserted here
=========  ======  =========  =====================================
hi-pri     5       100.00     exactly 100%
lo-pri     5        99.98     < 100%, every hole an empty-lo state
wrap       5        60.08     well below 100%
full       2       100.00     exactly 100%
empty      2       100.00     exactly 100%
output     8        74.36     < 100%, every hole a hold state
=========  ======  =========  =====================================
"""


from repro.analysis import Analysis
from repro.circuits import (
    build_circular_queue,
    build_pipeline,
    build_priority_buffer,
    circular_queue_empty_properties,
    circular_queue_full_properties,
    circular_queue_wrap_properties,
    pipeline_output_properties,
    priority_buffer_hi_properties,
    priority_buffer_lo_properties,
)
from repro.expr import parse_expr
from repro.mc import WorkMeter

from .conftest import emit


def _run_row(fsm, props, observed, dont_care=None):
    """Verify the suite, then estimate coverage; return (report, v_stats,
    c_stats).  Driven through the Analysis facade — the estimator shares
    the verification checker's sat sets, as the paper's implementation
    memoised results from verification."""
    analysis = Analysis.from_fsm(fsm, props, observed, dont_care)
    with WorkMeter(fsm.manager) as verify_meter:
        assert analysis.holds(), (
            f"properties failed: {[str(r.formula) for r in analysis.failing()]}"
        )
    with WorkMeter(fsm.manager) as cover_meter:
        report = analysis.coverage()
    return report, verify_meter.stats, cover_meter.stats


class TestCircuit1PriorityBuffer:
    def test_table2_priority_buffer_hi(self, benchmark, table_row):
        fsm = build_priority_buffer()
        props = priority_buffer_hi_properties()
        report, v_stats, c_stats = benchmark(_run_row, fsm, props, "hi")
        assert len(props) == 5
        assert report.percentage == 100.0
        emit(
            "Table 2 / Circuit 1 (priority buffer)",
            [table_row("hi-pri", len(props), report.percentage, v_stats,
                       c_stats, "100.00%")],
        )

    def test_table2_priority_buffer_lo(self, benchmark, table_row):
        fsm = build_priority_buffer()
        props = priority_buffer_lo_properties()
        report, v_stats, c_stats = benchmark(_run_row, fsm, props, "lo")
        assert len(props) == 5
        assert report.percentage < 100.0
        # The hole is the paper's missing case: the empty low-pri buffer.
        lo_zero = fsm.symbolize(parse_expr("lo = 0"))
        assert report.uncovered.subseteq(lo_zero)
        emit(
            "Table 2 / Circuit 1 (priority buffer)",
            [table_row("lo-pri", len(props), report.percentage, v_stats,
                       c_stats, "99.98%"),
             "holes are exactly the lo=0 states (the escaped-bug case)"],
        )


class TestCircuit2CircularQueue:
    def test_table2_circular_queue_wrap(self, benchmark, table_row):
        fsm = build_circular_queue()
        props = circular_queue_wrap_properties(stage="initial")
        report, v_stats, c_stats = benchmark(_run_row, fsm, props, "wrap")
        assert len(props) == 5
        assert 40.0 <= report.percentage <= 80.0  # paper: 60.08
        emit(
            "Table 2 / Circuit 2 (circular queue)",
            [table_row("wrap", len(props), report.percentage, v_stats,
                       c_stats, "60.08%")],
        )

    def test_table2_circular_queue_full(self, benchmark, table_row):
        fsm = build_circular_queue()
        props = circular_queue_full_properties()
        report, v_stats, c_stats = benchmark(_run_row, fsm, props, "full")
        assert len(props) == 2
        assert report.percentage == 100.0
        emit(
            "Table 2 / Circuit 2 (circular queue)",
            [table_row("full", len(props), report.percentage, v_stats,
                       c_stats, "100.00%")],
        )

    def test_table2_circular_queue_empty(self, benchmark, table_row):
        fsm = build_circular_queue()
        props = circular_queue_empty_properties()
        report, v_stats, c_stats = benchmark(_run_row, fsm, props, "empty")
        assert len(props) == 2
        assert report.percentage == 100.0
        emit(
            "Table 2 / Circuit 2 (circular queue)",
            [table_row("empty", len(props), report.percentage, v_stats,
                       c_stats, "100.00%")],
        )


class TestCircuit3Pipeline:
    def test_table2_pipeline_output(self, benchmark, table_row):
        fsm = build_pipeline()
        props = pipeline_output_properties()
        report, v_stats, c_stats = benchmark(
            _run_row, fsm, props, "output", "!out_valid"
        )
        assert len(props) == 8
        assert report.percentage < 100.0  # paper: 74.36
        holding = fsm.symbolize(parse_expr("h != 0"))
        assert report.uncovered.subseteq(holding)
        emit(
            "Table 2 / Circuit 3 (pipeline)",
            [table_row("output", len(props), report.percentage, v_stats,
                       c_stats, "74.36%"),
             "holes are exactly the hold-period (h != 0) states"],
        )


class TestCostParity:
    def test_table2_cost_parity_across_rows(self, benchmark):
        """The paper's headline cost claim: per row, coverage estimation
        costs about the same as verification ("runtimes and memory
        requirements are similar to those required by the actual
        verification")."""

        def run():
            rows = []
            for fsm, props, observed, dc in (
                (build_priority_buffer(), priority_buffer_hi_properties(),
                 "hi", None),
                (build_circular_queue(),
                 circular_queue_wrap_properties(stage="initial"), "wrap", None),
                (build_pipeline(), pipeline_output_properties(), "output",
                 "!out_valid"),
            ):
                _, v_stats, c_stats = _run_row(fsm, props, observed, dc)
                rows.append((fsm.name, v_stats, c_stats))
            return rows

        rows = benchmark(run)
        lines = []
        for name, v_stats, c_stats in rows:
            ratio = (c_stats.seconds / v_stats.seconds) if v_stats.seconds else 0
            lines.append(
                f"{name:22s} verify[{v_stats.format()}] "
                f"coverage[{c_stats.format()}] ratio={ratio:.2f}x"
            )
            # "Same order of complexity": within an order of magnitude.
            assert c_stats.seconds < 10 * max(v_stats.seconds, 1e-6)
        emit("Table 2 cost parity (verification vs coverage)", lines)
