"""Partitioned vs monolithic transition relations on widened models.

The tentpole claim: keeping one relation conjunct per latch behind an
early-quantification schedule makes the image-computation hot path cheaper
than conjoining everything into one relation BDD up front.  Two workloads,
measured in BDD nodes created (deterministic, machine-independent):

* **cold start** — build the FSM and compute one image (the suite runner's
  per-job shape for quick jobs, trace replay, failing-fast verification).
  Partitioned wins on every model because the monolithic AND — the largest
  single construction of a run — is simply never performed.
* **deep reachability** — build plus the full forward fixpoint (the
  dominant cost of the Table-1 recursion via ``C(S0, AG f) =
  C(reachable(S0), f)``).  Partitioned wins and the margin *grows with
  model size* on the widened pipeline, whose per-latch supports are local
  (stage ``k`` only reads stage ``k-1`` and the hold counter).

The widened circular queue is the honest counter-example for the second
workload: every latch's next-state function reads the full/empty
comparators and therefore almost every current variable, so no schedule
can retire variables early and repeated chain execution loses to one
product against the (compact, interleaved-order) monolithic relation.
The emitted table reports it; ``--trans mono`` exists for exactly such
models.  See ``docs/performance.md`` for the full analysis — regenerate
its table with ``python -m pytest benchmarks/test_bench_partition.py -s``.
"""

from repro.circuits import build_circular_queue, build_pipeline
from repro.engine import EngineConfig

from .conftest import emit

#: (label, builder) for the widened instances under test.
MODELS = {
    "queue d=32": lambda cfg: build_circular_queue(depth=32, config=cfg),
    "queue d=64": lambda cfg: build_circular_queue(depth=64, config=cfg),
    "pipeline s=8": lambda cfg: build_pipeline(stages=8, config=cfg),
    "pipeline s=12": lambda cfg: build_pipeline(stages=12, config=cfg),
}


def _cold_start(build, trans):
    """Build the machine and take one forward image from the initial set."""
    fsm = build(EngineConfig(trans=trans))
    fsm.image(fsm.init)
    return fsm.manager.created_nodes


def _deep_reachability(build, trans):
    """Build the machine and run the full forward fixpoint."""
    fsm = build(EngineConfig(trans=trans))
    fsm.reachable()
    return fsm.manager.created_nodes


def _sweep(workload, labels):
    rows = []
    for label in labels:
        build = MODELS[label]
        mono = workload(build, "mono")
        part = workload(build, "partitioned")
        rows.append((label, mono, part, mono / part))
    return rows


def _table(rows):
    lines = ["| model | mono nodes | partitioned nodes | win |",
             "| --- | --- | --- | --- |"]
    for label, mono, part, ratio in rows:
        lines.append(f"| {label} | {mono} | {part} | {ratio:.2f}x |")
    return lines


def test_partition_cold_start_beats_mono_everywhere(benchmark):
    rows = benchmark(lambda: _sweep(_cold_start, list(MODELS)))
    emit("Partitioning: cold start (build + first image), nodes created",
         _table(rows))
    for label, mono, part, _ratio in rows:
        assert part < mono, f"partitioned lost the cold start on {label}"
    # The margin comes from skipping the monolithic AND, whose cost grows
    # with the latch count — the win must be substantial, not marginal.
    assert max(ratio for _, _, _, ratio in rows) > 4.0


def test_partition_reachability_beats_mono_on_widened_pipeline(benchmark):
    rows = benchmark(
        lambda: _sweep(_deep_reachability, ["pipeline s=8", "pipeline s=12"])
    )
    emit("Partitioning: deep reachability on widened pipelines, nodes created",
         _table(rows))
    by_label = {label: (mono, part, ratio) for label, mono, part, ratio in rows}
    for label, (mono, part, _r) in by_label.items():
        assert part < mono, f"partitioned lost deep reachability on {label}"
    # Local supports mean the advantage grows as the pipeline widens.
    assert by_label["pipeline s=12"][2] > by_label["pipeline s=8"][2]


def test_partition_reachability_queue_tradeoff(benchmark):
    """The documented boundary of the technique: overlapping supports.

    Both modes must agree on the reachable set; no winner is asserted —
    on the queue the conjunct supports all overlap (every latch reads the
    full/empty comparators), so deep fixpoints favour the compact
    monolithic relation.  This is why ``--trans mono`` stays available.
    """

    def run():
        out = {}
        for trans in ("mono", "partitioned"):
            fsm = build_circular_queue(depth=16, config=EngineConfig(trans=trans))
            reached = fsm.count_states(fsm.reachable())
            out[trans] = (reached, fsm.manager.created_nodes)
        return out

    out = benchmark(run)
    assert out["mono"][0] == out["partitioned"][0]
    emit(
        "Partitioning: deep reachability on queue d=16 (the trade-off case)",
        [f"mono:        {out['mono'][1]} nodes",
         f"partitioned: {out['partitioned'][1]} nodes "
         "(overlapping supports — schedule cannot retire variables early)"],
    )
