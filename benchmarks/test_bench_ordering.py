"""Variable-ordering ablation (a design choice DESIGN.md calls out).

The FSM builder interleaves current/next copies of each state variable —
the standard choice for keeping transition relations small.  This bench
quantifies the decision on the circular queue by comparing the transition
relation size under the interleaved order against a blocked order (all
current variables, then all next variables), and shows sifting recovering
from the blocked order.
"""

from repro.bdd import set_order, sift
from repro.circuits import build_circular_queue
from repro.fsm import NEXT_SUFFIX

from .conftest import emit


def _transition_sizes():
    fsm = build_circular_queue()
    interleaved = fsm.transition.size()

    manager = fsm.manager
    blocked_order = fsm.state_vars + [v + NEXT_SUFFIX for v in fsm.state_vars]
    set_order(manager, blocked_order)
    blocked = fsm.transition.size()

    improvement = sift(manager)
    sifted = fsm.transition.size()
    return interleaved, blocked, sifted, improvement


def test_ordering_interleaved_vs_blocked(benchmark):
    interleaved, blocked, sifted, improvement = benchmark(_transition_sizes)
    emit(
        "Ordering ablation (circular queue transition relation)",
        [f"interleaved order: {interleaved} nodes",
         f"blocked order:     {blocked} nodes",
         f"after sifting:     {sifted} nodes (table change {improvement})"],
    )
    # The interleaved order must beat the blocked order, and sifting must
    # recover most of the damage.
    assert interleaved <= blocked
    assert sifted <= blocked
