"""The Section 3 memoisation remark, as an ablation.

"Results for sub-formulas computed during verification can be memoized and
used during coverage estimation for a more efficient implementation."

Benchmark the same estimation twice: once sharing the verification
checker's satisfaction-set cache, once from a cold checker.  Asserted
shape: the shared run allocates no more BDD nodes than the cold run.
"""

from repro.circuits import (
    build_circular_queue,
    build_priority_buffer,
    circular_queue_wrap_properties,
    priority_buffer_hi_properties,
)
from repro.coverage import CoverageEstimator
from repro.mc import ModelChecker, WorkMeter

from .conftest import emit


def _estimation_cost(build, props_for, observed, share):
    fsm = build()
    props = props_for()
    checker = ModelChecker(fsm)
    for prop in props:
        assert checker.holds(prop)
    if share:
        estimator = CoverageEstimator(fsm, checker=checker)
    else:
        estimator = CoverageEstimator(fsm, checker=ModelChecker(fsm))
    with WorkMeter(fsm.manager) as meter:
        estimator.estimate(props, observed=observed)
    return meter.stats


class TestMemoization:
    def test_memoization_shared_checker(self, benchmark):
        stats = benchmark(
            _estimation_cost,
            build_circular_queue,
            lambda: circular_queue_wrap_properties(stage="extended"),
            "wrap",
            True,
        )
        emit("Memoisation ablation (queue wrap, shared checker)",
             [f"estimation: {stats.format()}"])

    def test_memoization_cold_checker(self, benchmark):
        stats = benchmark(
            _estimation_cost,
            build_circular_queue,
            lambda: circular_queue_wrap_properties(stage="extended"),
            "wrap",
            False,
        )
        emit("Memoisation ablation (queue wrap, cold checker)",
             [f"estimation: {stats.format()}"])

    def test_memoization_shared_never_costs_more(self, benchmark):
        def run():
            shared = _estimation_cost(
                build_priority_buffer, priority_buffer_hi_properties, "hi", True
            )
            cold = _estimation_cost(
                build_priority_buffer, priority_buffer_hi_properties, "hi", False
            )
            return shared, cold

        shared, cold = benchmark(run)
        assert shared.nodes_created <= cold.nodes_created
        emit(
            "Memoisation ablation (buffer hi)",
            [f"shared checker: {shared.format()}",
             f"cold checker:   {cold.format()}",
             f"saved nodes:    {cold.nodes_created - shared.nodes_created}"],
        )
