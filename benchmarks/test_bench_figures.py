"""Figures 1-3 of the paper, regenerated through the symbolic engine.

* **Figure 1** — the covered state of ``AG (p1 -> AX AX q)``: exactly the
  state two steps after the ``p1`` state, and *not* the other ``q`` state.
* **Figure 2** — ``A[p1 U q]``: raw Definition 3 covers nothing (0%
  coverage), the observability transformation marks the first-reached ``q``
  state.
* **Figure 3** — the ``traverse`` and ``firstreached`` sets of
  ``A[f1 U f2]`` on the two-branch graph.
"""

from repro.circuits import (
    FIGURE1_FORMULA,
    FIGURE2_FORMULA,
    figure1_graph,
    figure2_graph,
    figure3_graph,
)
from repro.coverage import (
    CoverageEstimator,
    firstreached,
    mutation_covered,
    mutation_covered_raw,
    traverse,
)
from repro.ctl import parse_ctl
from repro.mc import ModelChecker

from .conftest import emit


class TestFigure1:
    def test_figure1_covered_state(self, benchmark):
        def run():
            graph = figure1_graph()
            fsm = graph.to_fsm()
            covered = CoverageEstimator(fsm).covered_set(
                parse_ctl(FIGURE1_FORMULA), observed="q"
            )
            return graph.set_to_states(fsm, covered)

        covered_names = benchmark(run)
        assert covered_names == {"marked"}
        emit(
            "Figure 1: AG (p1 -> AX AX q)",
            [f"covered states: {sorted(covered_names)} "
             "(paper: the single marked state)",
             "state 'other_q' satisfies q but is not covered"],
        )

    def test_figure1_oracle_agrees(self, benchmark):
        def run():
            graph = figure1_graph()
            model = graph.to_model()
            covered = mutation_covered(model, parse_ctl(FIGURE1_FORMULA), "q")
            return {model.state_names[i] for i in covered}

        assert benchmark(run) == {"marked"}


class TestFigure2:
    def test_figure2_raw_definition_zero_coverage(self, benchmark):
        def run():
            graph = figure2_graph()
            model = graph.to_model()
            return mutation_covered_raw(
                model, parse_ctl(FIGURE2_FORMULA), "q"
            )

        raw_covered = benchmark(run)
        assert raw_covered == set()
        emit(
            "Figure 2: A[p1 U q], raw Definition 3",
            ["covered states: {} -> 0% coverage "
             "(paper: 'the coverage for this property will be zero')"],
        )

    def test_figure2_transformed_marks_first_q(self, benchmark):
        def run():
            graph = figure2_graph()
            fsm = graph.to_fsm()
            covered = CoverageEstimator(fsm).covered_set(
                parse_ctl(FIGURE2_FORMULA), observed="q"
            )
            return graph.set_to_states(fsm, covered)

        covered_names = benchmark(run)
        assert covered_names == {"s2"}
        emit(
            "Figure 2: A[p1 U q], observability-transformed",
            [f"covered states: {sorted(covered_names)} "
             "(the first-reached q state, as the paper marks)"],
        )


class TestFigure3:
    def test_figure3_traverse_and_firstreached(self, benchmark):
        def run():
            graph = figure3_graph()
            fsm = graph.to_fsm()
            checker = ModelChecker(fsm)
            t_f1 = checker.sat(parse_ctl("f1"))
            t_f2 = checker.sat(parse_ctl("f2"))
            trav = graph.set_to_states(
                fsm, traverse(fsm, fsm.init, t_f1, t_f2)
            )
            first = graph.set_to_states(
                fsm, firstreached(fsm, fsm.init, t_f2)
            )
            return trav, first

        trav, first = benchmark(run)
        assert trav == {"a", "b", "c"}
        assert first == {"d", "e"}
        emit(
            "Figure 3: A[f1 U f2] start-state sets",
            [f"traverse     = {sorted(trav)}  (the f1-labelled prefix states)",
             f"firstreached = {sorted(first)}  (the first f2 states)"],
        )

    def test_figure3_until_coverage_is_their_union_restricted(self, benchmark):
        def run():
            graph = figure3_graph()
            fsm = graph.to_fsm()
            est = CoverageEstimator(fsm)
            f1_cov = est.covered_set(
                parse_ctl(FIGURE2_FORMULA.replace("p1", "f1").replace("q", "f2")),
                observed="f2",
            )
            return graph.set_to_states(fsm, f1_cov)

        covered = benchmark(run)
        # Coverage for observed f2 comes from the firstreached arm.
        assert covered == {"d", "e"}
