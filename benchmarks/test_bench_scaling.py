"""The Section 3 complexity claim: coverage estimation scales like model
checking.

"This algorithm is of the same order of complexity as conventional symbolic
model checking algorithms. ... In practice, coverage estimation can be
slightly more expensive than the verification in some cases because it
requires computing the coverage space as the set of reachable states."

We sweep the circular-queue depth and measure, at each size, the BDD work
(nodes created) for verification and for coverage estimation of the same
suite.  Asserted shape: the coverage/verification work ratio stays bounded
(it does not blow up with model size).

The sweep pins ``trans="mono"`` deliberately: the paper's complexity claim
is about the classic monolithic-relation algorithm (SMV's).  Partitioned
execution (our default) makes the preimage-heavy verification phase so
much cheaper that the cover/verify ratio drifts upward — a *win* that
would nonetheless distort this particular apples-to-apples shape check
(``benchmarks/test_bench_partition.py`` measures that win directly).
"""

from repro.circuits import build_circular_queue, circular_queue_wrap_properties
from repro.circuits.circular_queue import circular_queue_wrap_stall_property
from repro.coverage import CoverageEstimator
from repro.engine import EngineConfig
from repro.mc import ModelChecker, WorkMeter

from .conftest import emit

DEPTHS = [2, 4, 8]


#: The sweep is pinned to the monolithic relation (see module docstring).
MONO = EngineConfig(trans="mono")


def _measure(depth):
    props = circular_queue_wrap_properties(depth=depth, stage="extended")
    props.append(circular_queue_wrap_stall_property(depth=depth))
    # Screen out properties that do not hold at this depth on a throwaway
    # manager so the measured run starts cold.
    screen = ModelChecker(build_circular_queue(depth=depth, config=MONO))
    props = [p for p in props if screen.holds(p)]

    fsm = build_circular_queue(depth=depth, config=MONO)
    checker = ModelChecker(fsm)
    with WorkMeter(fsm.manager) as verify_meter:
        for prop in props:
            assert checker.holds(prop)
    estimator = CoverageEstimator(fsm, checker=checker)
    with WorkMeter(fsm.manager) as cover_meter:
        report = estimator.estimate(props, observed="wrap", verify=False)
    return {
        "depth": depth,
        "states": fsm.count_states(fsm.reachable()),
        "verify": verify_meter.stats,
        "cover": cover_meter.stats,
        "percent": report.percentage,
    }


def test_scaling_coverage_tracks_verification(benchmark):
    rows = benchmark(lambda: [_measure(d) for d in DEPTHS])
    lines = []
    for row in rows:
        verify_nodes = max(row["verify"].nodes_created, 1)
        ratio = row["cover"].nodes_created / verify_nodes
        lines.append(
            f"depth={row['depth']:<2d} states={row['states']:<6d} "
            f"verify[{row['verify'].format()}] "
            f"coverage[{row['cover'].format()}] node-ratio={ratio:.2f}x "
            f"cov={row['percent']:.1f}%"
        )
    emit("Scaling: coverage-estimation cost vs verification cost", lines)

    # Shape: the ratio must not explode as the model grows (same order of
    # complexity).  Allow generous slack: within 25x at every size, and the
    # largest size within 8x.
    for row in rows:
        ratio = row["cover"].nodes_created / max(row["verify"].nodes_created, 1)
        assert ratio < 25.0, f"coverage blew up at depth {row['depth']}"
    last = rows[-1]
    assert last["cover"].nodes_created < 8 * max(last["verify"].nodes_created, 1)


def test_scaling_reachability_dominates_extra_cost(benchmark):
    """The paper attributes the extra coverage cost to reachability
    analysis; confirm reachable-state computation is a significant share of
    the estimation-only work at the largest depth."""

    def run():
        fsm = build_circular_queue(depth=8)
        with WorkMeter(fsm.manager) as reach_meter:
            fsm.reachable()
        return reach_meter.stats

    stats = benchmark(run)
    assert stats.nodes_created > 0
    emit(
        "Reachability share of estimation cost (depth 8)",
        [f"reachability alone: {stats.format()}"],
    )
