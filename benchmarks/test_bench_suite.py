"""Benchmark: the parallel suite runner vs serial execution.

Not a figure from the paper — this measures the PR's suite subsystem: the
full registered job list (every builtin target at every stage plus the
shipped .rml models) executed serially in-process and fanned out over a
process pool.  The asserted property is correctness (identical per-job
percentages either way); the emitted block shows the wall-clock shape so
regressions in job cost or pool overhead are visible in the output.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

from repro.suite import default_jobs, run_jobs

from .conftest import emit

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def test_bench_suite_parallel_matches_serial():
    jobs = default_jobs(rml_dir=EXAMPLES_DIR)

    t0 = time.perf_counter()
    serial = run_jobs(jobs, max_workers=1)
    serial_seconds = time.perf_counter() - t0

    workers = min(4, os.cpu_count() or 1)
    t0 = time.perf_counter()
    parallel = run_jobs(jobs, max_workers=workers)
    parallel_seconds = time.perf_counter() - t0

    lines = [
        f"{len(jobs)} jobs; serial {serial_seconds:.2f}s, "
        f"parallel({workers}) {parallel_seconds:.2f}s",
    ]
    for s in serial:
        pct = f"{s.percentage:.2f}%" if s.percentage is not None else s.status
        lines.append(f"{s.name:24s} {pct}")
    emit("suite runner: serial vs parallel", lines)

    assert all(r.status == "ok" for r in serial), [
        (r.name, r.status, r.error) for r in serial if r.status != "ok"
    ]
    for s, p in zip(serial, parallel):
        assert (s.name, s.status, s.percentage) == (p.name, p.status, p.percentage)
        assert (s.covered_states, s.space_states) == (
            p.covered_states, p.space_states,
        )
