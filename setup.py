"""Legacy setup shim.

The offline build environment lacks the ``wheel`` package, so PEP 660
editable installs cannot build editable wheels; this shim lets
``pip install -e .`` fall back to ``setup.py develop``.  All metadata lives
in pyproject.toml.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    entry_points={"console_scripts": ["repro-coverage=repro.cli:main"]},
)
